"""Serial vs pooled equivalence of the region-sharded experiment layer.

The acceptance bar for the runtime refactor: running fig5, fig6, fig7, fig12
and the per-origin combined sweep with a process pool must produce rows that
are *identical* (exact float equality, same order) to the serial run, and
the declarative registry must route options without silent drops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CarbonDataset, RunConfig
from repro.exceptions import ConfigurationError
from repro.experiments import get_experiment
from repro.experiments.fig05_capacity import run_fig05
from repro.experiments.fig06_capacity_latency import run_fig06, run_fig06b
from repro.experiments.fig07_deferrability import run_fig07
from repro.experiments.fig08_interruptibility import run_fig08
from repro.experiments.fig09_combined_temporal import run_fig09
from repro.experiments.fig10_distributions import run_fig10
from repro.experiments.fig12_combined import run_combined_origins, run_fig12
from repro.timeseries.series import HourlySeries

#: Pool width used to force the pooled code path (the CI container may have
#: a single CPU, where ``workers=-1`` legitimately resolves to serial).
POOL = 2


class TestSerialPooledIdentity:
    def test_fig5_rows_identical(self, small_dataset):
        serial = run_fig05(small_dataset)
        pooled = run_fig05(small_dataset, workers=POOL)
        assert serial.rows() == pooled.rows()
        all_cpus = run_fig05(small_dataset, workers=-1)
        assert serial.rows() == all_cpus.rows()

    def test_fig6b_rows_identical(self, small_dataset):
        serial = run_fig06b(small_dataset, job_length_hours=24)
        pooled = run_fig06b(small_dataset, job_length_hours=24, workers=POOL)
        assert serial == pooled

    def test_fig6b_sampled_rows_identical(self, small_dataset):
        serial = run_fig06b(small_dataset, sample_regions_per_group=2)
        pooled = run_fig06b(small_dataset, sample_regions_per_group=2, workers=POOL)
        assert serial == pooled

    def test_fig6_rows_identical(self, small_dataset):
        serial = run_fig06(small_dataset, sample_regions_per_group=2)
        pooled = run_fig06(small_dataset, sample_regions_per_group=2, workers=POOL)
        assert serial.rows() == pooled.rows()

    def test_fig7_rows_identical(self, small_dataset):
        serial = run_fig07(small_dataset, lengths_hours=(6, 24), arrival_stride=24)
        pooled = run_fig07(
            small_dataset, lengths_hours=(6, 24), arrival_stride=24, workers=POOL
        )
        assert serial.rows() == pooled.rows()
        assert serial.ideal.cells == pooled.ideal.cells
        all_cpus = run_fig07(
            small_dataset, lengths_hours=(6, 24), arrival_stride=24, workers=-1
        )
        assert serial.rows() == all_cpus.rows()

    def test_fig8_rows_identical(self, small_dataset):
        serial = run_fig08(small_dataset, lengths_hours=(6, 24), arrival_stride=24)
        pooled = run_fig08(
            small_dataset, lengths_hours=(6, 24), arrival_stride=24, workers=POOL
        )
        assert serial.rows() == pooled.rows()

    def test_fig9_rows_identical(self, small_dataset):
        serial = run_fig09(small_dataset, lengths_hours=(6, 24), arrival_stride=24)
        pooled = run_fig09(
            small_dataset, lengths_hours=(6, 24), arrival_stride=24, workers=POOL
        )
        assert serial.rows() == pooled.rows()

    def test_fig10_rows_identical(self, small_dataset):
        serial = run_fig10(
            small_dataset,
            lengths_hours=(6, 24),
            slack_sweep=(24, "year"),
            arrival_stride=24,
        )
        pooled = run_fig10(
            small_dataset,
            lengths_hours=(6, 24),
            slack_sweep=(24, "year"),
            arrival_stride=24,
            workers=POOL,
        )
        assert serial.rows() == pooled.rows()

    def test_fig12_rows_identical(self, small_dataset):
        destinations = ("SE", "US-CA", "IN-MH")
        serial = run_fig12(small_dataset, destinations=destinations)
        pooled = run_fig12(small_dataset, destinations=destinations, workers=POOL)
        assert serial.rows() == pooled.rows()
        all_cpus = run_fig12(small_dataset, destinations=destinations, workers=-1)
        assert serial.rows() == all_cpus.rows()

    def test_combined_origins_rows_identical(self, small_dataset):
        serial = run_combined_origins(small_dataset, arrival_stride=24)
        pooled = run_combined_origins(small_dataset, arrival_stride=24, workers=POOL)
        assert serial.rows() == pooled.rows()
        all_cpus = run_combined_origins(small_dataset, arrival_stride=24, workers=-1)
        assert serial.rows() == all_cpus.rows()

    def test_combined_origins_pooled_destinations_match_serial_engine(
        self, small_dataset
    ):
        """The destination-sharded pool path must pick the same destination
        (same tie-breaking) as the serial CombinedSweep engine."""
        serial = run_combined_origins(small_dataset, arrival_stride=24)
        pooled = run_combined_origins(small_dataset, arrival_stride=24, workers=POOL)
        for origin in small_dataset.codes():
            assert serial.row(origin).destination == pooled.row(origin).destination


class TestFig12PerDestinationSlack:
    def test_heterogeneous_trace_lengths(self, full_catalog):
        """One-year slack must resolve from each destination's own trace.

        Before the fix, the slack came from ``dataset.codes()[0]``'s trace
        length; on a dataset where another region has a shorter trace the
        temporal sweep would reject ``length + slack > trace`` (or silently
        use the wrong window).
        """
        catalog = full_catalog.subset(("SE", "US-CA"))
        rng = np.random.default_rng(11)
        traces = {
            # First catalog code gets the *longer* trace, so the old
            # first-region rule would produce an infeasible slack for the
            # shorter destination below.
            ("SE", 2022): HourlySeries(rng.uniform(20, 80, size=8760), name="SE"),
            ("US-CA", 2022): HourlySeries(
                rng.uniform(100, 400, size=4380), name="US-CA"
            ),
        }
        dataset = CarbonDataset.from_traces(catalog, traces)
        result = run_fig12(
            dataset, destinations=("SE", "US-CA"), job_length_hours=24
        )
        assert {r["destination"] for r in result.rows()} == {"SE", "US-CA"}
        # Both slack settings produced a row for the short-trace destination.
        assert result.row("US-CA", "one-year") is not None
        assert result.row("US-CA", "24h") is not None


class TestRegistryOptionRouting:
    def test_specs_declare_options(self):
        assert get_experiment("fig7").options == frozenset({"workers", "arrival_stride"})
        assert get_experiment("fig5").options == frozenset({"workers"})
        assert get_experiment("fig6").options == frozenset(
            {"workers", "sample_regions_per_group"}
        )
        assert get_experiment("fig1").options == frozenset()
        assert not get_experiment("table1").needs_dataset

    def test_execute_routes_declared_options(self, small_dataset):
        config = RunConfig(arrival_stride=24, workers=POOL)
        result = get_experiment("fig7").execute(small_dataset, config)
        baseline = run_fig07(small_dataset, arrival_stride=24)
        assert result.rows() == baseline.rows()

    def test_execute_rejects_undeclared_explicit_option(self, small_dataset):
        config = RunConfig(arrival_stride=24)
        with pytest.raises(ConfigurationError, match="does not accept"):
            get_experiment("fig5").execute(small_dataset, config)

    def test_execute_lenient_mode_drops_undeclared_options(self, small_dataset):
        config = RunConfig(arrival_stride=24)
        result = get_experiment("fig5").execute(small_dataset, config, strict=False)
        assert result.rows() == run_fig05(small_dataset).rows()

    def test_execute_without_config_uses_defaults(self, small_dataset):
        result = get_experiment("fig5").execute(small_dataset)
        assert result.rows() == run_fig05(small_dataset).rows()

    def test_table1_executes_without_dataset(self):
        result = get_experiment("table1").execute(None, RunConfig())
        assert result.rows()

    def test_config_kwarg_on_entry_points(self, small_dataset):
        """run_figXX(dataset, config=...) — the uniform entry point —
        matches the historical keyword-argument call."""
        config = RunConfig(arrival_stride=24, workers=POOL)
        via_config = run_fig07(small_dataset, lengths_hours=(6,), config=config)
        via_kwargs = run_fig07(
            small_dataset, lengths_hours=(6,), arrival_stride=24, workers=POOL
        )
        assert via_config.rows() == via_kwargs.rows()
        # Explicit keyword beats the config field.
        explicit = run_fig07(
            small_dataset, lengths_hours=(6,), arrival_stride=12, config=config
        )
        assert explicit.rows() == run_fig07(
            small_dataset, lengths_hours=(6,), arrival_stride=12
        ).rows()
