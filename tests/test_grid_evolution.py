"""Unit tests for the greener-grid what-if (repro.grid.evolution)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.grid.evolution import GridEvolution, add_renewables, emission_factor_table
from repro.grid.sources import GenerationSource


class TestEmissionFactorTable:
    def test_contains_every_source(self):
        table = emission_factor_table()
        assert set(table) == {source.value for source in GenerationSource}

    def test_coal_is_dirtiest(self):
        table = emission_factor_table()
        assert table["coal"] == max(table.values())


class TestAddRenewables:
    def test_reduces_expected_intensity(self, small_catalog):
        region = small_catalog.get("PL")
        greener = add_renewables(region, 0.4)
        assert greener.average_carbon_intensity() < region.mix.average_carbon_intensity()

    def test_zero_addition_keeps_mix(self, small_catalog):
        region = small_catalog.get("PL")
        assert add_renewables(region, 0.0).average_carbon_intensity() == pytest.approx(
            region.mix.average_carbon_intensity()
        )


class TestGridEvolution:
    def test_scenario_intensity_decreases_with_renewables(self, small_catalog):
        evolution = GridEvolution(small_catalog.get("US-CA"), year=2022)
        scenarios = evolution.sweep([0.0, 0.2, 0.4])
        intensities = [s.mean_intensity for s in scenarios]
        assert intensities[0] > intensities[1] > intensities[2]

    def test_scenario_variability_share_increases(self, small_catalog):
        evolution = GridEvolution(small_catalog.get("PL"), year=2022)
        scenarios = evolution.sweep([0.0, 0.3])
        assert (
            scenarios[1].variable_renewable_share > scenarios[0].variable_renewable_share
        )

    def test_trace_has_full_year(self, small_catalog):
        evolution = GridEvolution(small_catalog.get("DE"), year=2022)
        assert len(evolution.scenario(0.1).trace) == 8760

    def test_intensity_by_fraction_keys(self, small_catalog):
        evolution = GridEvolution(small_catalog.get("DE"), year=2022)
        curve = evolution.intensity_by_fraction([0.0, 0.5])
        assert set(curve) == {0.0, 0.5}

    def test_invalid_fraction_rejected(self, small_catalog):
        evolution = GridEvolution(small_catalog.get("DE"), year=2022)
        with pytest.raises(ConfigurationError):
            evolution.sweep([1.5])

    def test_invalid_solar_fraction_rejected(self, small_catalog):
        with pytest.raises(ConfigurationError):
            GridEvolution(small_catalog.get("DE"), solar_fraction=1.5)

    def test_scenario_is_deterministic(self, small_catalog):
        evolution = GridEvolution(small_catalog.get("US-CA"), year=2022)
        a = evolution.scenario(0.2).trace
        b = evolution.scenario(0.2).trace
        assert a.values.tolist() == b.values.tolist()
