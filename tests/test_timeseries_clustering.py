"""Unit tests for the K-Means++ implementation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.timeseries.clustering import KMeansPlusPlus


def _three_blobs(points_per_blob: int = 30, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    blobs = [center + rng.normal(0, 0.5, size=(points_per_blob, 2)) for center in centers]
    return np.vstack(blobs)


class TestKMeansPlusPlus:
    def test_recovers_well_separated_blobs(self):
        points = _three_blobs()
        result = KMeansPlusPlus(num_clusters=3).fit(points)
        assert result.num_clusters == 3
        # Every blob should map to exactly one cluster label.
        labels = result.labels.reshape(3, -1)
        for blob_labels in labels:
            assert len(set(blob_labels.tolist())) == 1
        # And the three blobs should get three distinct labels.
        assert len({blob[0] for blob in labels}) == 3

    def test_inertia_is_small_for_tight_blobs(self):
        points = _three_blobs()
        result = KMeansPlusPlus(num_clusters=3).fit(points)
        assert result.inertia < 100.0

    def test_cluster_sizes_sum_to_points(self):
        points = _three_blobs()
        result = KMeansPlusPlus(num_clusters=3).fit(points)
        assert result.cluster_sizes().sum() == points.shape[0]

    def test_deterministic_given_seed(self):
        points = _three_blobs()
        a = KMeansPlusPlus(num_clusters=3, seed=7).fit(points)
        b = KMeansPlusPlus(num_clusters=3, seed=7).fit(points)
        assert np.array_equal(a.labels, b.labels)
        assert np.allclose(a.centroids, b.centroids)

    def test_one_dimensional_input(self):
        points = np.array([0.0, 0.1, 0.2, 5.0, 5.1, 5.2])
        result = KMeansPlusPlus(num_clusters=2).fit(points)
        assert result.num_clusters == 2
        assert set(result.labels[:3]) != set(result.labels[3:]) or (
            result.labels[0] != result.labels[-1]
        )

    def test_identical_points(self):
        points = np.ones((10, 2))
        result = KMeansPlusPlus(num_clusters=2).fit(points)
        assert result.inertia == pytest.approx(0.0)

    def test_more_clusters_than_points_raises(self):
        with pytest.raises(ConfigurationError):
            KMeansPlusPlus(num_clusters=5).fit(np.zeros((3, 2)))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            KMeansPlusPlus(num_clusters=0)
        with pytest.raises(ConfigurationError):
            KMeansPlusPlus(max_iterations=0)
        with pytest.raises(ConfigurationError):
            KMeansPlusPlus(num_restarts=0)

    def test_rejects_3d_input(self):
        with pytest.raises(ConfigurationError):
            KMeansPlusPlus(num_clusters=2).fit(np.zeros((2, 2, 2)))

    def test_labels_within_range(self):
        points = _three_blobs()
        result = KMeansPlusPlus(num_clusters=3).fit(points)
        assert result.labels.min() >= 0
        assert result.labels.max() < 3
