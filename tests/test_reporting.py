"""Unit tests for the reporting helpers."""

import pytest

from repro.exceptions import ConfigurationError
from repro.reporting import format_table, rows_to_csv, write_rows_csv

ROWS = [
    {"region": "SE", "mean": 14.234, "datacenter": True},
    {"region": "IN-MH", "mean": 622.1, "datacenter": False},
]


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(ROWS)
        assert "region" in text
        assert "SE" in text
        assert "622.10" in text

    def test_title(self):
        text = format_table(ROWS, title="Figure 3a")
        assert text.startswith("Figure 3a")

    def test_column_selection_and_order(self):
        text = format_table(ROWS, columns=["mean", "region"])
        header = text.splitlines()[0]
        assert header.index("mean") < header.index("region")

    def test_float_digits(self):
        text = format_table(ROWS, float_digits=0)
        assert "14" in text
        assert "14.23" not in text

    def test_booleans_rendered(self):
        text = format_table(ROWS)
        assert "yes" in text
        assert "no" in text

    def test_missing_column_value_is_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows)
        assert "b" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([])


class TestCsvExport:
    def test_csv_roundtrip(self):
        text = rows_to_csv(ROWS)
        lines = text.strip().splitlines()
        assert lines[0] == "region,mean,datacenter"
        assert len(lines) == 3

    def test_write_rows_csv(self, tmp_path):
        path = write_rows_csv(ROWS, tmp_path / "out" / "rows.csv")
        assert path.exists()
        assert "SE" in path.read_text()

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            rows_to_csv([])
