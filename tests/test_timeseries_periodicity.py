"""Unit tests for repro.timeseries.periodicity."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.timeseries.periodicity import (
    autocorrelation_at_lag,
    detect_periods,
    dominant_period,
    periodicity_score,
    periodogram_peaks,
)
from repro.timeseries.series import HourlySeries


def _weekly_trace() -> HourlySeries:
    hours = np.arange(24 * 7 * 8)
    weekly = 50.0 * np.cos(2 * np.pi * hours / 168.0)
    return HourlySeries(300.0 + weekly, name="weekly")


class TestPeriodicityScore:
    def test_perfect_daily_cycle_scores_high(self, diurnal_trace):
        assert periodicity_score(diurnal_trace, 24) > 0.95

    def test_daily_cycle_scores_low_at_weekly_period(self, diurnal_trace):
        # A pure 24-hour cycle also repeats weekly, so this is high as well;
        # but white noise at the weekly lag should not be.  Use a noisy trace.
        rng = np.random.default_rng(0)
        noise = HourlySeries(rng.normal(300, 30, size=8760))
        assert periodicity_score(noise, 168) < 0.3

    def test_constant_series_scores_zero(self, flat_trace):
        assert periodicity_score(flat_trace, 24) == 0.0

    def test_noise_scores_low(self):
        rng = np.random.default_rng(1)
        noise = HourlySeries(rng.normal(300, 30, size=8760))
        assert periodicity_score(noise, 24) < 0.3

    def test_weekly_cycle_detected(self):
        assert periodicity_score(_weekly_trace(), 168) > 0.9

    def test_accepts_plain_arrays(self, diurnal_trace):
        assert periodicity_score(diurnal_trace.values, 24) > 0.95

    def test_linear_trend_does_not_create_periodicity(self):
        trend = HourlySeries(np.linspace(100, 500, 8760))
        assert periodicity_score(trend, 24) < 0.5

    def test_requires_two_periods(self):
        with pytest.raises(ConfigurationError):
            periodicity_score(HourlySeries(np.arange(30.0)), 24)

    def test_rejects_non_positive_period(self, diurnal_trace):
        with pytest.raises(ConfigurationError):
            periodicity_score(diurnal_trace, 0)

    def test_score_clipped_to_unit_interval(self, diurnal_trace):
        score = periodicity_score(diurnal_trace, 24)
        assert 0.0 <= score <= 1.0


class TestAutocorrelation:
    def test_perfect_correlation_at_period(self, diurnal_trace):
        assert autocorrelation_at_lag(diurnal_trace.values, 24) == pytest.approx(1.0, abs=1e-6)

    def test_anticorrelation_at_half_period(self, diurnal_trace):
        assert autocorrelation_at_lag(diurnal_trace.values, 12) == pytest.approx(-1.0, abs=1e-6)

    def test_invalid_lag(self, diurnal_trace):
        with pytest.raises(ConfigurationError):
            autocorrelation_at_lag(diurnal_trace.values, 0)
        with pytest.raises(ConfigurationError):
            autocorrelation_at_lag(diurnal_trace.values, len(diurnal_trace))


class TestDetection:
    def test_detect_periods_returns_sorted_scores(self, diurnal_trace):
        detections = detect_periods(diurnal_trace)
        assert len(detections) == 2
        assert detections[0].score >= detections[1].score

    def test_dominant_period_of_diurnal_trace(self, diurnal_trace):
        dominant = dominant_period(diurnal_trace)
        assert dominant is not None
        assert dominant.period_hours == 24

    def test_dominant_period_of_noise_is_none(self):
        rng = np.random.default_rng(2)
        noise = HourlySeries(rng.normal(300, 30, size=8760))
        assert dominant_period(noise) is None

    def test_is_significant_threshold(self, diurnal_trace):
        detection = detect_periods(diurnal_trace)[0]
        assert detection.is_significant()
        assert not detection.is_significant(threshold=1.01)


class TestPeriodogram:
    def test_peak_at_24_hours(self, diurnal_trace):
        peaks = periodogram_peaks(diurnal_trace.values, top_k=3)
        assert peaks[0][0] == pytest.approx(24.0, rel=0.05)

    def test_requires_minimum_length(self):
        with pytest.raises(ConfigurationError):
            periodogram_peaks(np.array([1.0, 2.0]))
