"""Tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main

EM_FIXTURES = Path(__file__).parent / "data" / "electricitymaps"


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == "fig5"
        assert args.years == "2020,2022"
        assert args.csv is None
        # Options default to "unset" so the registry can tell explicit use
        # apart from each experiment's own default.
        assert args.workers is None
        assert args.arrival_stride is None
        assert args.sample_regions_per_group is None

    def test_run_all_defaults(self):
        args = build_parser().parse_args(["run-all"])
        assert args.out_dir is None
        assert args.years == "2020,2022"
        # The data plane defaults to the synthetic source.
        assert args.source is None
        assert args.data_dir is None

    def test_source_choices_are_validated_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-all", "--source", "csv"])
        assert "invalid choice" in capsys.readouterr().err

    def test_help_epilog_documents_cloud_region_naming(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        output = capsys.readouterr().out
        assert "region names:" in output
        assert "us-central1 -> US-IA" in output
        assert "eu-north-1 -> SE" in output
        assert "westeurope -> NL" in output


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig5" in output
        assert "Figure 12" in output

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Deferrability" in output

    def test_run_fig5_on_subset_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig5.csv"
        exit_code = main(
            [
                "run",
                "fig5",
                "--regions",
                "SE,US-CA,IN-MH,DE,PL,SG",
                "--years",
                "2022",
                "--csv",
                str(csv_path),
            ]
        )
        assert exit_code == 0
        assert csv_path.exists()
        output = capsys.readouterr().out
        assert "5a-infinite" in output

    def test_dataset_summary(self, capsys):
        assert main(["dataset-summary", "--regions", "SE,US-CA,IN-MH", "--years", "2022"]) == 0
        output = capsys.readouterr().out
        assert "greenest: SE" in output

    def test_dataset_summary_accepts_cloud_names_and_sources(self, capsys):
        assert main(
            ["dataset-summary", "--regions", "eu-north-1,us-central1",
             "--years", "2022", "--source", "em-csv",
             "--data-dir", str(EM_FIXTURES)]
        ) == 0
        output = capsys.readouterr().out
        assert "greenest: SE" in output
        assert "US-IA" in output

    def test_run_fleet_with_cloud_region_names(self, capsys):
        """Acceptance: `run fleet --regions us-central1,europe-west1`
        resolves the GCP names to US-IA/BE and completes."""
        exit_code = main(
            ["run", "fleet", "--regions", "us-central1,europe-west1",
             "--years", "2022", "--workers", "2", "--seed", "7"]
        )
        assert exit_code == 0
        assert "saving_retained" in capsys.readouterr().out

    def test_file_source_without_data_dir_is_an_explicit_error(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="requires data_dir"):
            main(["run", "table1", "--source", "em-csv"])

    def test_unknown_experiment_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "fig99", "--regions", "SE,US-CA", "--years", "2022"])

    def test_run_with_workers_pool(self, capsys):
        exit_code = main(
            [
                "run",
                "fig7",
                "--regions",
                "SE,DE,US-CA",
                "--years",
                "2022",
                "--arrival-stride",
                "168",
                "--workers",
                "2",
            ]
        )
        assert exit_code == 0
        assert "job_length_hours" in capsys.readouterr().out

    def test_run_fleet_writes_csv(self, capsys, tmp_path):
        """Acceptance: `run fleet --regions SE,DE,US-CA --workers 2` works
        end-to-end and produces a CSV."""
        csv_path = tmp_path / "fleet.csv"
        exit_code = main(
            [
                "run",
                "fleet",
                "--regions",
                "SE,DE,US-CA",
                "--years",
                "2022",
                "--workers",
                "2",
                "--seed",
                "7",
                "--csv",
                str(csv_path),
            ]
        )
        assert exit_code == 0
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "saving_retained" in header
        assert "slots_per_region" in header

    def test_undeclared_option_is_an_explicit_error(self):
        """--arrival-stride used to be silently dropped for experiments that
        don't take it; it must now raise a ConfigurationError."""
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="does not accept"):
            main(
                [
                    "run",
                    "fig5",
                    "--regions",
                    "SE,US-CA",
                    "--years",
                    "2022",
                    "--arrival-stride",
                    "24",
                ]
            )
        with pytest.raises(ConfigurationError, match="does not accept"):
            main(["run", "fig1", "--regions", "SE,US-CA", "--years", "2022",
                  "--workers", "2"])

    def test_spillover_threshold_routes_only_into_fleet(self, tmp_path):
        """--spillover-threshold is declared by the fleet experiment only:
        any other experiment must reject it explicitly instead of silently
        dropping it."""
        from repro.exceptions import ConfigurationError

        for experiment in ("fig5", "fig7"):
            with pytest.raises(ConfigurationError, match="does not accept"):
                main(["run", experiment, "--regions", "SE,US-CA", "--years",
                      "2022", "--spillover-threshold", "0"])
        csv_path = tmp_path / "fleet.csv"
        assert main(
            ["run", "fleet", "--regions", "SE,DE,US-CA", "--years", "2022",
             "--seed", "7", "--spillover-threshold", "2.5",
             "--csv", str(csv_path)]
        ) == 0
        header, first = csv_path.read_text().splitlines()[:2]
        assert "spillover_recovered" in header
        assert "spillover_threshold" in header
        # The routed option collapsed the axis to the CLI value.
        column = header.split(",").index("spillover_threshold")
        assert first.split(",")[column] == "2.5"


class TestRunAll:
    def test_run_all_reduced_regions(self, capsys, tmp_path):
        exit_code = main(
            [
                "run-all",
                "--regions",
                "SE,DE,US-CA",
                "--years",
                "2020,2022",
                "--arrival-stride",
                "168",
                "--workers",
                "2",
                "--out-dir",
                str(tmp_path / "results"),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "all 15 runnable experiments completed" in output
        from repro.experiments import list_experiments

        for spec in list_experiments():
            csv_path = tmp_path / "results" / f"{spec.identifier}.csv"
            assert csv_path.exists(), spec.identifier
            assert csv_path.read_text().strip(), spec.identifier

    def test_run_all_shares_one_dataset_and_respects_options(self, capsys, tmp_path):
        """run-all routes options leniently: experiments that do not declare
        --arrival-stride still run instead of failing."""
        exit_code = main(
            [
                "run-all",
                "--regions",
                "SE,US-CA",
                "--years",
                "2022",
                "--arrival-stride",
                "168",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "fig5.csv").exists()  # fig5 declares no stride
        assert (tmp_path / "fig7.csv").exists()
        # fig3b needs two dataset years: skipped, not failed.
        assert not (tmp_path / "fig3b.csv").exists()
        assert "skipped" in capsys.readouterr().out

    def test_run_all_on_ingested_csv_fixtures(self, capsys, tmp_path):
        """Acceptance: run-all completes on a dataset ingested from the
        committed ElectricityMaps CSV fixtures, addressed by cloud-region
        names (GCP and AWS mixed)."""
        exit_code = main(
            ["run-all",
             "--source", "em-csv",
             "--data-dir", str(EM_FIXTURES),
             "--regions", "us-central1,europe-west1,eu-north-1",
             "--years", "2022",
             "--arrival-stride", "730",
             "--workers", "2",
             "--out-dir", str(tmp_path / "results")]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "runnable experiments completed" in output
        assert (tmp_path / "results" / "fleet.csv").exists()
        assert (tmp_path / "results" / "fig5.csv").exists()
