"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == "fig5"
        assert args.years == "2020,2022"
        assert args.csv is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig5" in output
        assert "Figure 12" in output

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Deferrability" in output

    def test_run_fig5_on_subset_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig5.csv"
        exit_code = main(
            [
                "run",
                "fig5",
                "--regions",
                "SE,US-CA,IN-MH,DE,PL,SG",
                "--years",
                "2022",
                "--csv",
                str(csv_path),
            ]
        )
        assert exit_code == 0
        assert csv_path.exists()
        output = capsys.readouterr().out
        assert "5a-infinite" in output

    def test_dataset_summary(self, capsys):
        assert main(["dataset-summary", "--regions", "SE,US-CA,IN-MH", "--years", "2022"]) == 0
        output = capsys.readouterr().out
        assert "greenest: SE" in output

    def test_unknown_experiment_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "fig99", "--regions", "SE,US-CA", "--years", "2022"])
