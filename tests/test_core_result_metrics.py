"""Unit tests for schedule results and carbon-reduction metrics."""

import pytest

from repro.constants import GLOBAL_AVERAGE_CARBON_INTENSITY
from repro.core.metrics import (
    CarbonReduction,
    absolute_reduction,
    global_average_reduction_percent,
    relative_reduction_percent,
)
from repro.core.result import ExecutionSlice, ScheduleResult
from repro.exceptions import ConfigurationError
from repro.workloads.job import Job


def _result(slices, emissions, baseline, arrival=0, length=2.0):
    return ScheduleResult(
        job=Job.batch(length_hours=length, slack_hours=24),
        policy="test",
        arrival_hour=arrival,
        slices=slices,
        emissions_g=emissions,
        baseline_emissions_g=baseline,
    )


class TestExecutionSlice:
    def test_end_hour(self):
        piece = ExecutionSlice("SE", start_hour=5, duration_hours=2.0, emissions_g=10.0)
        assert piece.end_hour == 7.0

    def test_invalid_slices(self):
        with pytest.raises(ConfigurationError):
            ExecutionSlice("SE", start_hour=0, duration_hours=0.0, emissions_g=1.0)
        with pytest.raises(ConfigurationError):
            ExecutionSlice("SE", start_hour=-1, duration_hours=1.0, emissions_g=1.0)
        with pytest.raises(ConfigurationError):
            ExecutionSlice("SE", start_hour=0, duration_hours=1.0, emissions_g=-1.0)


class TestScheduleResult:
    def test_reduction_metrics(self):
        slices = (ExecutionSlice("SE", 3, 2.0, 60.0),)
        result = _result(slices, emissions=60.0, baseline=100.0)
        assert result.reduction_g == pytest.approx(40.0)
        assert result.relative_reduction == pytest.approx(0.4)
        assert result.reduction_per_job_hour_g == pytest.approx(20.0)

    def test_relative_reduction_with_zero_baseline(self):
        slices = (ExecutionSlice("SE", 0, 2.0, 0.0),)
        result = _result(slices, emissions=0.0, baseline=0.0)
        assert result.relative_reduction == 0.0

    def test_delay_and_completion(self):
        slices = (ExecutionSlice("SE", 5, 1.0, 10.0), ExecutionSlice("SE", 8, 1.0, 10.0))
        result = _result(slices, 20.0, 30.0, arrival=2)
        assert result.delay_hours == 3
        assert result.completion_hour == 9.0
        assert result.total_executed_hours == pytest.approx(2.0)

    def test_interruptions_and_migrations(self):
        slices = (
            ExecutionSlice("SE", 0, 1.0, 5.0),
            ExecutionSlice("SE", 2, 1.0, 5.0),
            ExecutionSlice("DE", 3, 1.0, 5.0),
        )
        result = _result(slices, 15.0, 20.0, length=3.0)
        assert result.num_interruptions == 1
        assert result.num_migrations == 1
        assert result.regions_used() == ("SE", "DE")

    def test_validate_covers_job(self):
        slices = (ExecutionSlice("SE", 0, 2.0, 5.0),)
        good = _result(slices, 5.0, 5.0, length=2.0)
        ScheduleResult.validate_covers_job(good)
        bad = _result(slices, 5.0, 5.0, length=3.0)
        with pytest.raises(ConfigurationError):
            ScheduleResult.validate_covers_job(bad)

    def test_invalid_result(self):
        slices = (ExecutionSlice("SE", 0, 1.0, 5.0),)
        with pytest.raises(ConfigurationError):
            _result(slices, -1.0, 5.0)
        with pytest.raises(ConfigurationError):
            _result(slices, 1.0, 5.0, arrival=-1)


class TestMetrics:
    def test_absolute_reduction(self):
        assert absolute_reduction(100.0, 60.0) == 40.0
        assert absolute_reduction(60.0, 100.0) == -40.0

    def test_relative_reduction_percent(self):
        assert relative_reduction_percent(100.0, 60.0) == pytest.approx(40.0)
        assert relative_reduction_percent(0.0, 0.0) == 0.0

    def test_global_average_reduction_percent(self):
        assert global_average_reduction_percent(
            GLOBAL_AVERAGE_CARBON_INTENSITY / 2
        ) == pytest.approx(50.0)

    def test_global_average_requires_positive_denominator(self):
        with pytest.raises(ConfigurationError):
            global_average_reduction_percent(10.0, global_average_intensity=0.0)

    def test_carbon_reduction_dataclass(self):
        reduction = CarbonReduction(absolute_g=36.839)
        assert reduction.global_average_percent == pytest.approx(10.0)

    def test_carbon_reduction_from_emissions_normalises_energy(self):
        reduction = CarbonReduction.from_emissions(
            baseline_emissions_g=2000.0, optimized_emissions_g=1000.0, energy_kwh=10.0
        )
        assert reduction.absolute_g == pytest.approx(100.0)

    def test_carbon_reduction_invalid_energy(self):
        with pytest.raises(ConfigurationError):
            CarbonReduction.from_emissions(10.0, 5.0, energy_kwh=0.0)
