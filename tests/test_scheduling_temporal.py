"""Unit tests for the temporal shifting policies."""

import numpy as np
import pytest

from repro.core.result import ScheduleResult
from repro.exceptions import ConfigurationError, SchedulingError
from repro.scheduling.temporal import CarbonAgnosticPolicy, DeferralPolicy, InterruptiblePolicy
from repro.timeseries.series import HourlySeries
from repro.workloads.job import Job


@pytest.fixture()
def valley_trace():
    """48-hour trace with an obvious valley on day two (hours 30-35)."""
    values = np.full(8760, 500.0)
    values[30:36] = 50.0
    return HourlySeries(values, name="valley")


class TestCarbonAgnosticPolicy:
    def test_runs_at_arrival(self, valley_trace):
        job = Job.batch(length_hours=4, slack_hours=24)
        result = CarbonAgnosticPolicy().schedule(job, valley_trace, arrival_hour=10)
        assert result.emissions_g == pytest.approx(4 * 500.0)
        assert result.reduction_g == 0.0
        assert result.delay_hours == 0

    def test_interactive_job_emissions(self, valley_trace):
        job = Job.interactive(length_hours=0.01)
        result = CarbonAgnosticPolicy().schedule(job, valley_trace, arrival_hour=31)
        assert result.emissions_g == pytest.approx(50.0 * 0.01)

    def test_wraps_around_year_end(self, valley_trace):
        job = Job.batch(length_hours=6, slack_hours=0)
        result = CarbonAgnosticPolicy().schedule(job, valley_trace, arrival_hour=8758)
        ScheduleResult.validate_covers_job(result)
        assert result.emissions_g == pytest.approx(6 * 500.0)

    def test_invalid_arrival(self, valley_trace):
        job = Job.batch(length_hours=4)
        with pytest.raises(ConfigurationError):
            CarbonAgnosticPolicy().schedule(job, valley_trace, arrival_hour=9000)

    def test_job_longer_than_trace_rejected(self):
        trace = HourlySeries(np.full(48, 100.0))
        job = Job.batch(length_hours=24, slack_hours=48)
        with pytest.raises(SchedulingError):
            CarbonAgnosticPolicy().schedule(job, trace, arrival_hour=0)


class TestDeferralPolicy:
    def test_defers_into_the_valley(self, valley_trace):
        job = Job.batch(length_hours=6, slack_hours=48)
        result = DeferralPolicy().schedule(job, valley_trace, arrival_hour=10)
        assert result.emissions_g == pytest.approx(6 * 50.0)
        assert result.delay_hours == 20
        assert result.num_interruptions == 0

    def test_zero_slack_equals_baseline(self, valley_trace):
        job = Job.batch(length_hours=6, slack_hours=0)
        result = DeferralPolicy().schedule(job, valley_trace, arrival_hour=10)
        assert result.emissions_g == pytest.approx(result.baseline_emissions_g)

    def test_never_worse_than_baseline(self, small_dataset):
        trace = small_dataset.series("US-CA")
        policy = DeferralPolicy()
        for arrival in (0, 1234, 8000):
            job = Job.batch(length_hours=12, slack_hours=24)
            result = policy.schedule(job, trace, arrival)
            assert result.emissions_g <= result.baseline_emissions_g + 1e-9

    def test_contiguous_execution(self, valley_trace):
        job = Job.batch(length_hours=6, slack_hours=48)
        result = DeferralPolicy().schedule(job, valley_trace, arrival_hour=0)
        assert len(result.slices) == 1
        ScheduleResult.validate_covers_job(result)

    def test_sub_hour_job_degrades_to_baseline(self, valley_trace):
        job = Job(length_hours=0.5, slack_hours=24)
        result = DeferralPolicy().schedule(job, valley_trace, arrival_hour=0)
        assert result.emissions_g == pytest.approx(result.baseline_emissions_g)


class TestInterruptiblePolicy:
    def test_picks_cheapest_hours(self, valley_trace):
        job = Job.batch(length_hours=8, slack_hours=48, interruptible=True)
        result = InterruptiblePolicy().schedule(job, valley_trace, arrival_hour=0)
        # Six hours in the valley at 50, the remaining two at 500.
        assert result.emissions_g == pytest.approx(6 * 50.0 + 2 * 500.0)
        assert result.num_interruptions >= 1

    def test_beats_or_matches_deferral(self, small_dataset):
        trace = small_dataset.series("US-CA")
        job = Job.batch(length_hours=24, slack_hours=48, interruptible=True)
        for arrival in (0, 500, 4000):
            deferral = DeferralPolicy().schedule(job, trace, arrival)
            interruptible = InterruptiblePolicy().schedule(job, trace, arrival)
            assert interruptible.emissions_g <= deferral.emissions_g + 1e-9

    def test_slices_cover_job(self, valley_trace):
        job = Job.batch(length_hours=5, slack_hours=48, interruptible=True)
        result = InterruptiblePolicy().schedule(job, valley_trace, arrival_hour=0)
        ScheduleResult.validate_covers_job(result)
        assert len(result.slices) == 5

    def test_one_hour_job_gains_nothing_over_deferral(self, small_dataset):
        trace = small_dataset.series("DE")
        job = Job.batch(length_hours=1, slack_hours=24, interruptible=True)
        deferral = DeferralPolicy().schedule(job, trace, 100)
        interruptible = InterruptiblePolicy().schedule(job, trace, 100)
        assert interruptible.emissions_g == pytest.approx(deferral.emissions_g)

    def test_flat_trace_yields_zero_reduction(self, flat_trace):
        job = Job.batch(length_hours=24, slack_hours=168, interruptible=True)
        result = InterruptiblePolicy().schedule(job, flat_trace, arrival_hour=0)
        assert result.reduction_g == pytest.approx(0.0)

    def test_power_scales_emissions(self, valley_trace):
        job = Job.batch(length_hours=6, slack_hours=48, interruptible=True, power_kw=2.0)
        result = InterruptiblePolicy().schedule(job, valley_trace, arrival_hour=0)
        assert result.emissions_g == pytest.approx(2.0 * 6 * 50.0)

    def test_non_interruptible_job_runs_contiguously(self, valley_trace):
        """A job with interruptible=False must not be split into pieces; it
        degrades to the contiguous deferral schedule."""
        job = Job.batch(length_hours=8, slack_hours=48, interruptible=False)
        result = InterruptiblePolicy().schedule(job, valley_trace, arrival_hour=0)
        deferred = DeferralPolicy().schedule(job, valley_trace, arrival_hour=0)
        assert len(result.slices) == 1
        assert result.num_interruptions == 0
        assert result.emissions_g == pytest.approx(deferred.emissions_g)
        ScheduleResult.validate_covers_job(result)

    def test_non_interruptible_still_defers(self, valley_trace):
        job = Job.batch(length_hours=6, slack_hours=48, interruptible=False)
        result = InterruptiblePolicy().schedule(job, valley_trace, arrival_hour=10)
        assert result.emissions_g == pytest.approx(6 * 50.0)


class TestCyclicWrapConvention:
    """Slice start hours must stay inside the trace (cyclic wrap).

    Regression tests for arrivals near hour 8759: deferred or interrupted
    starts that land past the end of the year must be reduced modulo the
    trace length, per the module's documented convention.
    """

    def test_deferral_start_wraps_near_year_end(self, valley_trace):
        # Arrival 8759 with 48h slack: the cheapest window is the day-two
        # valley only if the search wraps; whatever is chosen, the slice's
        # start hour must be a valid trace index.
        job = Job.batch(length_hours=6, slack_hours=48)
        result = DeferralPolicy().schedule(job, valley_trace, arrival_hour=8759)
        for piece in result.slices:
            assert 0 <= piece.start_hour < len(valley_trace)
        assert result.emissions_g == pytest.approx(6 * 50.0)

    def test_interrupt_starts_wrap_near_year_end(self, valley_trace):
        job = Job.batch(length_hours=8, slack_hours=48, interruptible=True)
        result = InterruptiblePolicy().schedule(job, valley_trace, arrival_hour=8755)
        for piece in result.slices:
            assert 0 <= piece.start_hour < len(valley_trace)
        # The six valley hours (30-35) are reachable only through the wrap.
        assert result.emissions_g == pytest.approx(6 * 50.0 + 2 * 500.0)

    def test_wrapped_emissions_match_unwrapped_rotation(self, small_dataset):
        """Scheduling at arrival a on a trace rotated by a must equal
        scheduling at hour 0 of the rotated trace."""
        trace = small_dataset.series("US-CA")
        arrival = 8759
        rotated = HourlySeries(
            np.roll(np.asarray(trace.values), -arrival), name="rot"
        )
        job = Job.batch(length_hours=12, slack_hours=24, interruptible=True)
        wrapped = InterruptiblePolicy().schedule(job, trace, arrival)
        unwrapped = InterruptiblePolicy().schedule(job, rotated, 0)
        assert wrapped.emissions_g == pytest.approx(unwrapped.emissions_g)
