"""Unit tests for repro.timeseries.stats."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.timeseries.series import HourlySeries
from repro.timeseries.stats import (
    coefficient_of_variation,
    daily_coefficient_of_variation,
    diurnal_range,
    hour_of_day_means,
    normalized_profile,
    rolling_mean,
    summary_statistics,
)


class TestCoefficientOfVariation:
    def test_basic(self):
        assert coefficient_of_variation(np.array([1.0, 3.0])) == pytest.approx(0.5)

    def test_zero_mean(self):
        assert coefficient_of_variation(np.array([0.0, 0.0])) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            coefficient_of_variation(np.array([]))


class TestDailyCV:
    def test_constant_series_has_zero_daily_cv(self, flat_trace):
        assert daily_coefficient_of_variation(flat_trace) == 0.0

    def test_diurnal_series_has_positive_daily_cv(self, diurnal_trace):
        assert daily_coefficient_of_variation(diurnal_trace) > 0.1

    def test_requires_a_complete_day(self):
        with pytest.raises(ConfigurationError):
            daily_coefficient_of_variation(HourlySeries(np.arange(10.0)))

    def test_daily_cv_is_average_of_per_day_cv(self):
        # Day 1: constant (CV 0).  Day 2: values with CV 0.5.
        day1 = np.full(24, 10.0)
        day2 = np.array([5.0, 15.0] * 12)
        series = HourlySeries(np.concatenate([day1, day2]))
        expected_day2 = np.std(day2) / np.mean(day2)
        assert daily_coefficient_of_variation(series) == pytest.approx(expected_day2 / 2)


class TestRollingMean:
    def test_values(self):
        result = rolling_mean(np.array([1.0, 2.0, 3.0, 4.0]), 2)
        assert np.allclose(result, [1.5, 2.5, 3.5])

    def test_window_equal_to_length(self):
        result = rolling_mean(np.array([2.0, 4.0]), 2)
        assert np.allclose(result, [3.0])

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            rolling_mean(np.arange(5.0), 0)
        with pytest.raises(ConfigurationError):
            rolling_mean(np.arange(5.0), 6)


class TestSummaryStatistics:
    def test_fields(self, diurnal_trace):
        summary = summary_statistics(diurnal_trace)
        assert summary.name == "diurnal"
        assert summary.mean == pytest.approx(300.0, rel=1e-6)
        assert summary.minimum == pytest.approx(200.0)
        assert summary.maximum == pytest.approx(400.0)
        assert summary.spread == pytest.approx(200.0)
        assert summary.num_hours == 8760
        assert summary.daily_coefficient_of_variation > 0

    def test_diurnal_range(self, diurnal_trace, flat_trace):
        assert diurnal_range(diurnal_trace) == pytest.approx(200.0, rel=1e-6)
        assert diurnal_range(flat_trace) == 0.0

    def test_hour_of_day_means_shape(self, diurnal_trace):
        assert hour_of_day_means(diurnal_trace).shape == (24,)

    def test_normalized_profile_mean_is_one(self, diurnal_trace):
        profile = normalized_profile(diurnal_trace)
        assert profile.mean() == pytest.approx(1.0)

    def test_normalized_profile_of_zero_series(self):
        series = HourlySeries(np.zeros(48))
        assert np.allclose(normalized_profile(series), 0.0)
