"""Unit tests for the :mod:`repro.devtools.dataflow` core.

The v2 lint rules all lean on these def-use chains, so the core gets its
own coverage: parameter/assignment kinds, augmented assignment, tuple
unpacking (elementwise and whole-RHS), conditional reassignment keeping
*every* definition, frame isolation of nested functions, method qualnames,
LEGB resolution order and cross-function lookups through the module graph.
"""

from __future__ import annotations

import ast
import textwrap

from repro.devtools import dataflow


def analyze(source: str) -> dataflow.ModuleFlow:
    return dataflow.analyze_module(ast.parse(textwrap.dedent(source)))


class TestFunctionFlow:
    def test_parameters_are_definitions(self):
        module = analyze("def f(a, b, *rest, c=1, **kw):\n    return a\n")
        flow = module.function("f")
        assert flow.params == ("a", "b", "c", "rest", "kw")
        assert [d.kind for d in flow.defs_of("a")] == [dataflow.KIND_PARAM]
        assert [d.kind for d in flow.defs_of("kw")] == [dataflow.KIND_PARAM]

    def test_plain_and_annotated_assignment(self):
        module = analyze(
            """
            def f():
                x = 1
                y: int = x + 1
                (z := 2)
            """
        )
        flow = module.function("f")
        assert [d.kind for d in flow.defs_of("x")] == [dataflow.KIND_ASSIGN]
        assert [d.kind for d in flow.defs_of("y")] == [dataflow.KIND_ASSIGN]
        assert [d.kind for d in flow.defs_of("z")] == [dataflow.KIND_ASSIGN]

    def test_augmented_assignment_records_increment(self):
        module = analyze("def f(seed):\n    seed += 3\n    return seed\n")
        flow = module.function("f")
        kinds = [d.kind for d in flow.defs_of("seed")]
        assert kinds == [dataflow.KIND_PARAM, dataflow.KIND_AUG]
        aug = flow.defs_of("seed")[1]
        assert isinstance(aug.value, ast.Constant) and aug.value.value == 3

    def test_literal_tuple_unpacking_is_elementwise(self):
        module = analyze("def f():\n    a, b = 1, ambient()\n")
        flow = module.function("f")
        (a_def,) = flow.defs_of("a")
        (b_def,) = flow.defs_of("b")
        assert a_def.kind == dataflow.KIND_UNPACK
        assert a_def.element == 0
        assert isinstance(a_def.value, ast.Constant) and a_def.value.value == 1
        assert b_def.element == 1
        assert isinstance(b_def.value, ast.Call)

    def test_opaque_rhs_unpacking_flows_whole_value(self):
        module = analyze("def f(pair):\n    a, b = pair\n")
        flow = module.function("f")
        (a_def,) = flow.defs_of("a")
        assert a_def.kind == dataflow.KIND_UNPACK
        assert a_def.element is None
        assert isinstance(a_def.value, ast.Name) and a_def.value.id == "pair"

    def test_starred_unpacking_does_not_go_elementwise(self):
        module = analyze("def f():\n    a, *rest = 1, 2, 3\n")
        flow = module.function("f")
        assert flow.defs_of("a")[0].element is None
        assert flow.defs_of("rest")[0].kind == dataflow.KIND_UNPACK

    def test_conditional_reassignment_keeps_every_definition(self):
        module = analyze(
            """
            def f(flag, fallback):
                seed = 1
                if flag:
                    seed = fallback
                return seed
            """
        )
        flow = module.function("f")
        values = [d.value for d in flow.defs_of("seed")]
        assert len(values) == 2  # a sound tracer must prove both
        assert isinstance(values[0], ast.Constant)
        assert isinstance(values[1], ast.Name)

    def test_for_with_and_except_targets(self):
        module = analyze(
            """
            def f(items, opener):
                for item in items:
                    pass
                with opener() as handle:
                    pass
                try:
                    pass
                except ValueError as error:
                    pass
            """
        )
        flow = module.function("f")
        assert flow.defs_of("item")[0].kind == dataflow.KIND_FOR
        assert flow.defs_of("handle")[0].kind == dataflow.KIND_WITH
        assert flow.defs_of("error")[0].kind == dataflow.KIND_EXCEPT

    def test_nested_frames_stay_isolated(self):
        module = analyze(
            """
            def outer():
                x = 1
                def inner():
                    y = 2
                    return y
                return inner
            """
        )
        outer = module.function("outer")
        inner = module.function("outer.inner")
        assert "y" not in outer.definitions
        assert "x" not in inner.definitions
        assert outer.defs_of("inner")[0].kind == dataflow.KIND_FUNCTION

    def test_returns_and_calls_are_collected(self):
        module = analyze(
            """
            def f(x):
                helper(x)
                if x:
                    return x + 1
                return 0
            """
        )
        flow = module.function("f")
        assert len(flow.returns) == 2
        assert any(isinstance(c.func, ast.Name) and c.func.id == "helper"
                   for c in flow.calls)


class TestModuleFlow:
    def test_module_level_definitions_and_imports(self):
        module = analyze(
            """
            import numpy as np
            from os import environ
            SALT = 17
            """
        )
        assert module.defs_of("np")[0].kind == dataflow.KIND_IMPORT
        assert module.imports["np"] == "numpy"
        assert module.imports["environ"] == "os.environ"
        assert module.defs_of("SALT")[0].kind == dataflow.KIND_ASSIGN

    def test_methods_are_keyed_class_dot_name(self):
        module = analyze(
            """
            class Runner:
                def step(self, n):
                    return n
            """
        )
        assert module.function("step") is None
        flow = module.function("Runner.step")
        assert flow is not None and flow.params == ("self", "n")

    def test_cross_function_attribute_reads_resolve_through_module(self):
        """A rule tracing ``helper(config)``'s return sees the attribute
        read ``config.seed`` against *helper's* own parameter frame."""
        module = analyze(
            """
            def helper(config):
                return config.seed

            def entry(config):
                return helper(config)
            """
        )
        helper = module.function("helper")
        (returned,) = helper.returns
        assert isinstance(returned, ast.Attribute)
        base = returned.value
        assert isinstance(base, ast.Name)
        definitions = dataflow.resolve_name(base.id, (helper,), module)
        assert [d.kind for d in definitions] == [dataflow.KIND_PARAM]


class TestResolveName:
    def test_innermost_frame_wins(self):
        module = analyze(
            """
            seed = 1

            def outer():
                seed = 2
                def inner():
                    return seed
            """
        )
        outer = module.function("outer")
        inner = module.function("outer.inner")
        definitions = dataflow.resolve_name("seed", (outer, inner), module)
        assert len(definitions) == 1
        assert isinstance(definitions[0].value, ast.Constant)
        assert definitions[0].value.value == 2

    def test_falls_back_to_module_frame(self):
        module = analyze("SALT = 9\n\ndef f():\n    return SALT\n")
        flow = module.function("f")
        (definition,) = dataflow.resolve_name("SALT", (flow,), module)
        assert definition.kind == dataflow.KIND_ASSIGN

    def test_unbound_name_is_empty(self):
        module = analyze("def f():\n    return ambient\n")
        assert dataflow.resolve_name("ambient", (module.function("f"),), module) == ()


class TestIterFunctionFrames:
    def test_yields_enclosing_chain_outermost_first(self):
        module = analyze(
            """
            def a():
                def b():
                    def c():
                        pass
            """
        )
        chains = {
            flow.qualname: tuple(f.qualname for f in chain)
            for flow, chain in dataflow.iter_function_frames(module)
        }
        assert chains["a"] == ()
        assert chains["a.b"] == ("a",)
        assert chains["a.b.c"] == ("a", "a.b")

    def test_method_frames_have_no_function_chain(self):
        module = analyze("class C:\n    def m(self):\n        pass\n")
        ((flow, chain),) = [
            (f, c)
            for f, c in dataflow.iter_function_frames(module)
            if f.qualname == "C.m"
        ]
        assert chain == ()
