"""Tests for the shared parallel experiment runtime (`repro.runtime`)."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.runtime import (
    OPTION_FIELDS,
    RunConfig,
    config_option,
    parallel_map_regions,
    resolve_workers,
)
from repro.runtime.executor import default_chunk_size


def _windowed_stats(code: str, values: np.ndarray) -> tuple[str, float, float]:
    """A small but non-trivial per-region kernel (module-level: picklable)."""
    sums = np.cumsum(values)
    return code, float(sums[-1]), float(values.mean())


def _boom(code: str, values: np.ndarray) -> float:
    raise RuntimeError(f"worker failure in {code}")


class TestResolveWorkers:
    def test_serial_specifications(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_positive_counts_used_as_given(self):
        assert resolve_workers(2) == 2
        assert resolve_workers(16) == 16

    def test_all_cpus(self):
        assert resolve_workers(-1) >= 1

    def test_invalid_negative(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)


class TestDefaultChunkSize:
    def test_roughly_four_chunks_per_worker(self):
        assert default_chunk_size(123, 4) == 8  # ceil(123 / 16)

    def test_never_below_one(self):
        assert default_chunk_size(2, 16) == 1
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(5, 0) == 1


class TestParallelMapRegions:
    @pytest.fixture()
    def payloads(self):
        rng = np.random.default_rng(7)
        codes = tuple(f"R{i:02d}" for i in range(9))
        return codes, tuple(rng.normal(300.0, 40.0, size=48) for _ in codes)

    def test_serial_matches_inline_loop(self, payloads):
        codes, values = payloads
        expected = [_windowed_stats(c, v) for c, v in zip(codes, values)]
        assert parallel_map_regions(_windowed_stats, codes, values) == expected

    def test_pooled_is_bit_identical_to_serial(self, payloads):
        codes, values = payloads
        serial = parallel_map_regions(_windowed_stats, codes, values, workers=None)
        pooled = parallel_map_regions(_windowed_stats, codes, values, workers=2)
        assert serial == pooled  # exact float equality, and same order

    def test_pooled_with_explicit_chunk_size(self, payloads):
        codes, values = payloads
        serial = parallel_map_regions(_windowed_stats, codes, values)
        pooled = parallel_map_regions(
            _windowed_stats, codes, values, workers=2, chunk_size=4
        )
        assert serial == pooled

    def test_more_workers_than_regions(self, payloads):
        codes, values = payloads
        serial = parallel_map_regions(_windowed_stats, codes, values)
        pooled = parallel_map_regions(_windowed_stats, codes, values, workers=64)
        assert serial == pooled

    def test_empty_input(self):
        assert parallel_map_regions(_windowed_stats, (), (), workers=2) == []

    def test_single_region_stays_serial(self):
        values = np.arange(24.0)
        result = parallel_map_regions(_windowed_stats, ("X",), (values,), workers=-1)
        assert result == [_windowed_stats("X", values)]

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            parallel_map_regions(_windowed_stats, ("A", "B"), (np.ones(4),))

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            parallel_map_regions(
                _windowed_stats, ("A",), (np.ones(4),), workers=2, chunk_size=0
            )

    def test_worker_errors_propagate_serial(self):
        with pytest.raises(RuntimeError, match="worker failure in A"):
            parallel_map_regions(_boom, ("A",), (np.ones(4),))

    def test_worker_errors_propagate_pooled(self):
        with pytest.raises(RuntimeError, match="worker failure"):
            parallel_map_regions(_boom, ("A", "B"), (np.ones(4), np.ones(4)), workers=2)


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.regions is None
        assert config.workers is None
        assert config.explicit_options() == frozenset()
        assert config.output_dir() == Path("results")

    def test_field_validation(self):
        with pytest.raises(ConfigurationError):
            RunConfig(years=())
        with pytest.raises(ConfigurationError):
            RunConfig(regions=())
        with pytest.raises(ConfigurationError):
            RunConfig(workers=-3)
        with pytest.raises(ConfigurationError):
            RunConfig(arrival_stride=0)
        with pytest.raises(ConfigurationError):
            RunConfig(sample_regions_per_group=0)

    def test_coercion(self):
        config = RunConfig(regions=["SE", "DE"], years=[2022], cache_dir="out")
        assert config.regions == ("SE", "DE")
        assert config.years == (2022,)
        assert config.cache_dir == Path("out")
        assert config.output_dir() == Path("out")

    def test_explicit_options_and_kwargs(self):
        config = RunConfig(workers=2, arrival_stride=24)
        assert config.explicit_options() == frozenset({"workers", "arrival_stride"})
        assert config.experiment_kwargs(frozenset({"workers"})) == {"workers": 2}
        assert config.experiment_kwargs(
            frozenset({"workers", "arrival_stride", "sample_regions_per_group"})
        ) == {"workers": 2, "arrival_stride": 24}
        assert config.experiment_kwargs(frozenset()) == {}

    def test_unknown_option_name_rejected(self):
        with pytest.raises(ConfigurationError):
            RunConfig().experiment_kwargs(frozenset({"turbo"}))

    def test_seed_is_a_shared_option(self):
        """Setting --seed always shapes the dataset, so it must not trip the
        strict routing check; it still routes into experiments that declare
        it (the fleet sweep)."""
        config = RunConfig(seed=7)
        assert config.explicit_options() == frozenset()
        assert config.experiment_kwargs(frozenset({"seed"})) == {"seed": 7}
        assert config.experiment_kwargs(frozenset()) == {}
        assert config_option(config, "seed", None, default=0) == 7
        assert config_option(RunConfig(), "seed", None, default=0) == 0

    def test_build_dataset_respects_regions_years_and_seed(self):
        config = RunConfig(regions=("SE", "DE"), years=(2022,), seed=1234)
        dataset = config.build_dataset()
        assert set(dataset.codes()) == {"SE", "DE"}
        assert dataset.years == (2022,)
        # A different seed must synthesise different traces.
        other = RunConfig(regions=("SE", "DE"), years=(2022,), seed=99).build_dataset()
        assert not np.array_equal(
            dataset.trace_values("SE"), other.trace_values("SE")
        )

    def test_build_dataset_resolves_cloud_region_names(self):
        config = RunConfig(regions=("us-central1", "eu-north-1"), years=(2022,))
        dataset = config.build_dataset()
        assert set(dataset.codes()) == {"US-IA", "SE"}

    def test_default_source_is_bit_identical_to_explicit_synthetic(self):
        default = RunConfig(regions=("SE",), years=(2022,), seed=7).build_dataset()
        explicit = RunConfig(
            regions=("SE",), years=(2022,), seed=7, source="synthetic"
        ).build_dataset()
        assert np.array_equal(
            default.trace_values("SE"), explicit.trace_values("SE")
        )

    def test_build_dataset_from_csv_source(self):
        config = RunConfig(
            regions=("us-central1",),
            years=(2022,),
            source="em-csv",
            data_dir="tests/data/electricitymaps",
        )
        dataset = config.build_dataset()
        assert dataset.codes() == ("US-IA",)
        assert dataset.trace_values("US-IA").size == 8760

    def test_describe_mentions_set_fields(self):
        text = RunConfig(workers=4, arrival_stride=24).describe()
        assert "workers=4" in text
        assert "arrival_stride=24" in text


class TestConfigOption:
    def test_explicit_value_wins(self):
        config = RunConfig(arrival_stride=24)
        assert config_option(config, "arrival_stride", 12, default=1) == 12

    def test_config_fills_unset_value(self):
        config = RunConfig(arrival_stride=24)
        assert config_option(config, "arrival_stride", None, default=1) == 24

    def test_default_when_neither_set(self):
        assert config_option(None, "arrival_stride", None, default=1) == 1
        assert config_option(RunConfig(), "workers", None) is None

    def test_unknown_option_name(self):
        with pytest.raises(ConfigurationError):
            config_option(RunConfig(), "not_an_option", None)

    def test_option_fields_cover_routable_options(self):
        assert set(OPTION_FIELDS) == {
            "workers",
            "arrival_stride",
            "sample_regions_per_group",
            "seed",
            "spillover_threshold",
            "source",
            "data_dir",
        }

    def test_source_and_data_dir_are_shared_options(self):
        """Picking a trace source parameterises the shared dataset — like
        ``seed`` it must never trip strict routing for experiments that
        don't declare it."""
        config = RunConfig(source="synthetic")
        assert config.explicit_options() == frozenset()

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown trace source"):
            RunConfig(source="csv")

    def test_file_source_requires_data_dir(self):
        with pytest.raises(ConfigurationError, match="requires data_dir"):
            RunConfig(source="em-csv")
        with pytest.raises(ConfigurationError, match="requires data_dir"):
            RunConfig(source="em-json")

    def test_data_dir_requires_file_source(self):
        with pytest.raises(ConfigurationError, match="file-backed"):
            RunConfig(data_dir="tests/data/electricitymaps")
        with pytest.raises(ConfigurationError, match="file-backed"):
            RunConfig(source="synthetic", data_dir="tests/data/electricitymaps")

    def test_data_dir_coerced_to_path(self):
        config = RunConfig(source="em-csv", data_dir="tests/data/electricitymaps")
        assert isinstance(config.data_dir, Path)

    def test_spillover_threshold_is_a_strict_float_option(self):
        """The spillover threshold routes as a *float* (fractional hours and
        inf are meaningful), participates in strict routing, and rejects
        negative or NaN values."""
        config = RunConfig(spillover_threshold=1.5)
        assert config.explicit_options() == frozenset({"spillover_threshold"})
        kwargs = config.experiment_kwargs(frozenset({"spillover_threshold"}))
        assert kwargs == {"spillover_threshold": 1.5}
        assert isinstance(kwargs["spillover_threshold"], float)
        assert RunConfig(spillover_threshold=float("inf")).experiment_kwargs(
            frozenset({"spillover_threshold"})
        ) == {"spillover_threshold": float("inf")}
        assert config_option(config, "spillover_threshold", None) == 1.5
        with pytest.raises(ConfigurationError):
            RunConfig(spillover_threshold=-0.5)
        with pytest.raises(ConfigurationError):
            RunConfig(spillover_threshold=float("nan"))
