"""Unit tests for cluster traces and the synthetic trace generator."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.generator import ClusterTraceGenerator, GeneratorConfig
from repro.workloads.job import Job, JobClass
from repro.workloads.traces import ClusterTrace, TraceJob


def _trace_job(length=6.0, arrival=0, origin="SE", migratable=True, interactive=False):
    if interactive:
        job = Job.interactive(migratable=migratable)
    else:
        job = Job.batch(length_hours=length, migratable=migratable)
    return TraceJob(job=job, arrival_hour=arrival, origin_region=origin)


class TestTraceJob:
    def test_invalid_arrival(self):
        with pytest.raises(ConfigurationError):
            TraceJob(job=Job.batch(1), arrival_hour=-1, origin_region="SE")

    def test_invalid_origin(self):
        with pytest.raises(ConfigurationError):
            TraceJob(job=Job.batch(1), arrival_hour=0, origin_region="")


class TestClusterTrace:
    def test_from_jobs_sorts_by_arrival(self):
        trace = ClusterTrace.from_jobs([_trace_job(arrival=5), _trace_job(arrival=1)])
        assert trace[0].arrival_hour == 1

    def test_filters(self):
        trace = ClusterTrace.from_jobs(
            [
                _trace_job(interactive=True, origin="SE"),
                _trace_job(length=24, origin="DE"),
                _trace_job(length=6, origin="DE", migratable=False),
            ]
        )
        assert len(trace.interactive_jobs()) == 1
        assert len(trace.batch_jobs()) == 2
        assert len(trace.migratable_jobs()) == 2
        assert len(trace.in_region("DE")) == 2

    def test_aggregates(self):
        trace = ClusterTrace.from_jobs([_trace_job(length=6), _trace_job(length=24)])
        assert trace.total_job_hours() == pytest.approx(30.0)
        assert trace.total_energy_kwh() == pytest.approx(30.0)
        assert trace.job_length_histogram() == {6.0: 1, 24.0: 1}

    def test_migratable_fraction(self):
        trace = ClusterTrace.from_jobs(
            [_trace_job(migratable=True), _trace_job(migratable=False)]
        )
        assert trace.migratable_fraction() == pytest.approx(0.5)

    def test_migratable_fraction_of_empty_trace(self):
        assert ClusterTrace(()).migratable_fraction() == 0.0

    def test_class_counts(self):
        trace = ClusterTrace.from_jobs([_trace_job(interactive=True), _trace_job()])
        counts = trace.class_counts()
        assert counts[JobClass.INTERACTIVE] == 1
        assert counts[JobClass.BATCH] == 1

    def test_concat(self):
        a = ClusterTrace.from_jobs([_trace_job(arrival=3)])
        b = ClusterTrace.from_jobs([_trace_job(arrival=1)])
        merged = ClusterTrace.concat([a, b])
        assert len(merged) == 2
        assert merged[0].arrival_hour == 1

    def test_origin_regions_sorted(self):
        trace = ClusterTrace.from_jobs([_trace_job(origin="DE"), _trace_job(origin="SE")])
        assert trace.origin_regions() == ("DE", "SE")


class TestClusterTraceGenerator:
    def test_generates_requested_number_of_jobs(self):
        generator = ClusterTraceGenerator(GeneratorConfig(num_jobs=100, seed=1))
        trace = generator.generate(["SE", "DE"])
        assert len(trace) == 100

    def test_interactive_fraction_respected(self):
        generator = ClusterTraceGenerator(
            GeneratorConfig(num_jobs=200, interactive_fraction=0.3, seed=2)
        )
        trace = generator.generate(["SE"])
        assert len(trace.interactive_jobs()) == 60

    def test_origins_drawn_from_given_regions(self):
        generator = ClusterTraceGenerator(GeneratorConfig(num_jobs=50, seed=3))
        trace = generator.generate(["SE", "DE", "US-CA"])
        assert set(trace.origin_regions()) <= {"SE", "DE", "US-CA"}

    def test_arrivals_within_horizon(self):
        config = GeneratorConfig(num_jobs=300, horizon_hours=1000, seed=4)
        trace = ClusterTraceGenerator(config).generate(["SE"])
        assert trace.arrival_hours().max() < 1000

    def test_deterministic_given_seed(self):
        config = GeneratorConfig(num_jobs=50, seed=5)
        a = ClusterTraceGenerator(config).generate(["SE"])
        b = ClusterTraceGenerator(config).generate(["SE"])
        assert [t.arrival_hour for t in a] == [t.arrival_hour for t in b]
        assert [t.job.length_hours for t in a] == [t.job.length_hours for t in b]

    def test_generate_mixed_controls_migratable_fraction(self):
        generator = ClusterTraceGenerator(GeneratorConfig(num_jobs=400, seed=6))
        trace = generator.generate_mixed(["SE", "DE"], migratable_fraction=0.25)
        assert trace.migratable_fraction() == pytest.approx(0.25, abs=0.08)

    def test_generate_requires_origins(self):
        with pytest.raises(ConfigurationError):
            ClusterTraceGenerator().generate([])

    def test_generate_mixed_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            ClusterTraceGenerator().generate_mixed(["SE"], 1.5)
        with pytest.raises(ConfigurationError):
            ClusterTraceGenerator().generate_mixed(["SE"], 0.5, interruptible_fraction=-0.1)

    def test_generate_mixed_controls_interruptible_fraction(self):
        generator = ClusterTraceGenerator(GeneratorConfig(num_jobs=400, seed=6))
        trace = generator.generate_mixed(
            ["SE", "DE"], migratable_fraction=0.5, interruptible_fraction=0.5
        )
        batch = trace.batch_jobs()
        share = len(batch.interruptible_jobs()) / len(batch)
        assert share == pytest.approx(0.5, abs=0.1)
        # Interactive jobs are never interruptible.
        assert all(not t.job.interruptible for t in trace.interactive_jobs())
        # Both ends of the knob are exact for batch jobs.
        pinned = generator.generate_mixed(["SE", "DE"], 0.5, interruptible_fraction=0.0)
        assert all(not t.job.interruptible for t in pinned.batch_jobs())
        split = generator.generate_mixed(["SE", "DE"], 0.5, interruptible_fraction=1.0)
        assert all(t.job.interruptible for t in split.batch_jobs())

    def test_interruptible_knob_does_not_perturb_the_rest_of_the_trace(self):
        """The interruptible mask draws from its own RNG stream: arrivals,
        lengths and the migratable mask are identical across fractions."""
        generator = ClusterTraceGenerator(GeneratorConfig(num_jobs=120, seed=9))
        base = generator.generate_mixed(["SE", "DE"], 0.5)
        varied = generator.generate_mixed(["SE", "DE"], 0.5, interruptible_fraction=0.3)
        assert [t.arrival_hour for t in base] == [t.arrival_hour for t in varied]
        assert [t.job.length_hours for t in base] == [t.job.length_hours for t in varied]
        assert [t.job.migratable for t in base] == [t.job.migratable for t in varied]

    def test_scheduling_arrays_carry_interruptible_flags(self):
        generator = ClusterTraceGenerator(GeneratorConfig(num_jobs=60, seed=3))
        trace = generator.generate_mixed(["SE"], 1.0, interruptible_fraction=1.0)
        arrivals, lengths, deadlines, powers, interruptible = trace.scheduling_arrays()
        assert interruptible.dtype == bool
        assert interruptible.shape == arrivals.shape
        expected = [t.job.interruptible for t in trace]
        assert interruptible.tolist() == expected

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(num_jobs=0)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(interactive_fraction=1.5)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(batch_slack_hours=-1)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(horizon_hours=0)
