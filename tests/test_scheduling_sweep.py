"""Unit tests for the vectorised temporal sweep kernels."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scheduling.sweep import TemporalSweep, sweep_reductions_per_job_hour
from repro.scheduling.temporal import CarbonAgnosticPolicy, DeferralPolicy, InterruptiblePolicy
from repro.workloads.job import Job


class TestAgainstPolicies:
    """The vectorised sweeps must agree with the per-job policies."""

    @pytest.mark.parametrize("length,slack", [(1, 24), (6, 24), (24, 24), (24, 168), (48, 24)])
    def test_matches_policy_results(self, small_dataset, length, slack):
        trace = small_dataset.series("US-CA")
        sweep = TemporalSweep(trace, length, slack)
        baseline = sweep.baseline_sums()
        deferral = sweep.deferral_sums()
        interruptible = sweep.interruptible_sums()
        job = Job.batch(length_hours=length, slack_hours=slack, interruptible=True)
        for arrival in (0, 17, 4321, 8700, 8759):
            agnostic = CarbonAgnosticPolicy().schedule(job, trace, arrival)
            deferred = DeferralPolicy().schedule(job, trace, arrival)
            interrupted = InterruptiblePolicy().schedule(job, trace, arrival)
            assert baseline[arrival] == pytest.approx(agnostic.emissions_g)
            assert deferral[arrival] == pytest.approx(deferred.emissions_g)
            assert interruptible[arrival] == pytest.approx(interrupted.emissions_g)

    def test_one_year_slack_matches_global_minimum(self, small_dataset):
        trace = small_dataset.series("DE")
        length = 24
        sweep = TemporalSweep(trace, length, len(trace) - length)
        interruptible = sweep.interruptible_sums()
        expected = np.sort(trace.values)[:length].sum()
        assert np.allclose(interruptible, expected)
        deferral = sweep.deferral_sums()
        assert np.all(deferral >= interruptible - 1e-9)


class TestOrderingInvariants:
    def test_deferral_never_exceeds_baseline(self, small_dataset):
        trace = small_dataset.series("AU-SA")
        sweep = TemporalSweep(trace, 12, 24)
        assert np.all(sweep.deferral_sums() <= sweep.baseline_sums() + 1e-9)

    def test_interruptible_never_exceeds_deferral(self, small_dataset):
        trace = small_dataset.series("AU-SA")
        sweep = TemporalSweep(trace, 12, 24)
        assert np.all(sweep.interruptible_sums() <= sweep.deferral_sums() + 1e-9)

    def test_more_slack_never_hurts(self, small_dataset):
        trace = small_dataset.series("US-CA")
        little = TemporalSweep(trace, 24, 24).deferral_sums()
        lots = TemporalSweep(trace, 24, 168).deferral_sums()
        assert np.all(lots <= little + 1e-9)

    def test_flat_trace_offers_no_reduction(self, flat_trace):
        sweep = TemporalSweep(flat_trace, 24, 168)
        assert np.allclose(sweep.baseline_sums(), sweep.interruptible_sums())


class TestStride:
    def test_stride_subsamples_arrivals(self, small_dataset):
        trace = small_dataset.series("DE")
        full = TemporalSweep(trace, 6, 24)
        strided = TemporalSweep(trace, 6, 24, arrival_stride=24)
        assert len(strided.baseline_sums()) == 365
        assert np.allclose(strided.baseline_sums(), full.baseline_sums()[::24])
        assert np.allclose(strided.deferral_sums(), full.deferral_sums()[::24])
        assert np.allclose(strided.interruptible_sums(), full.interruptible_sums()[::24])

    def test_strided_mean_close_to_full_mean(self, small_dataset):
        trace = small_dataset.series("US-CA")
        full = sweep_reductions_per_job_hour(trace, 24, 24)
        strided = sweep_reductions_per_job_hour(trace, 24, 24, arrival_stride=24)
        assert strided["combined"] == pytest.approx(full["combined"], rel=0.1)


class TestValidation:
    def test_invalid_parameters(self, flat_trace):
        with pytest.raises(ConfigurationError):
            TemporalSweep(flat_trace, 0, 24)
        with pytest.raises(ConfigurationError):
            TemporalSweep(flat_trace, 24, -1)
        with pytest.raises(ConfigurationError):
            TemporalSweep(flat_trace, 24, 24, arrival_stride=0)
        with pytest.raises(ConfigurationError):
            TemporalSweep(flat_trace, 8000, 8000)

    def test_mean_reductions_keys(self, small_dataset):
        sweep = TemporalSweep(small_dataset.series("SE"), 6, 24)
        result = sweep.mean_reductions()
        assert set(result) == {
            "baseline_mean",
            "deferral_reduction_mean",
            "interruptible_reduction_mean",
        }

    def test_reductions_per_job_hour_fields(self, small_dataset):
        result = sweep_reductions_per_job_hour(small_dataset.series("US-CA"), 24, 24)
        assert result["combined"] == pytest.approx(
            result["deferral"] + result["interrupt_extra"]
        )
        assert result["baseline_per_hour"] > 0
