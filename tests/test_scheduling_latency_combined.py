"""Unit tests for latency-constrained and combined spatiotemporal policies."""

import pytest

from repro.exceptions import ConfigurationError
from repro.scheduling.combined import CombinedShiftingPolicy, CombinedSweep
from repro.scheduling.latency_aware import (
    LatencyConstrainedPolicy,
    latency_capacity_tradeoff,
    reduction_by_slo,
)
from repro.scheduling.spatial import OneMigrationPolicy
from repro.scheduling.temporal import DeferralPolicy, InterruptiblePolicy
from repro.workloads.job import Job


class TestLatencyConstrainedPolicy:
    def test_tight_slo_limits_reduction(self, small_dataset):
        job = Job.interactive()
        tight = LatencyConstrainedPolicy(latency_slo_ms=10.0)
        loose = LatencyConstrainedPolicy(latency_slo_ms=500.0)
        origin = "IN-MH"
        tight_result = tight.schedule(job, small_dataset, origin, 0)
        loose_result = loose.schedule(job, small_dataset, origin, 0)
        assert loose_result.emissions_g <= tight_result.emissions_g + 1e-9

    def test_invalid_slo(self):
        with pytest.raises(ConfigurationError):
            LatencyConstrainedPolicy(latency_slo_ms=-5.0)


class TestLatencyCapacityTradeoff:
    def test_reduction_grows_with_slo(self, small_dataset):
        points = latency_capacity_tradeoff(
            small_dataset,
            latency_slos_ms=(0.0, 100.0, 300.0),
            idle_fractions=(1.0,),
        )
        curve = reduction_by_slo(points, 1.0)
        values = list(curve.values())
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_infinite_capacity_beats_constrained(self, small_dataset):
        points = latency_capacity_tradeoff(
            small_dataset,
            latency_slos_ms=(300.0,),
            idle_fractions=(1.0, 0.5),
        )
        unconstrained = reduction_by_slo(points, 1.0)[300.0]
        constrained = reduction_by_slo(points, 0.5)[300.0]
        assert unconstrained >= constrained - 1e-9

    def test_reduction_percent_helper(self, small_dataset):
        points = latency_capacity_tradeoff(
            small_dataset, latency_slos_ms=(250.0,), idle_fractions=(1.0,)
        )
        point = points[0]
        percent = point.reduction_percent_of(small_dataset.global_average())
        assert 0 <= percent <= 100

    def test_unknown_idle_fraction_raises(self, small_dataset):
        points = latency_capacity_tradeoff(
            small_dataset, latency_slos_ms=(100.0,), idle_fractions=(1.0,)
        )
        with pytest.raises(ConfigurationError):
            reduction_by_slo(points, 0.25)


class TestCombinedShiftingPolicy:
    def test_beats_pure_temporal_for_dirty_origin(self, small_dataset):
        job = Job.batch(length_hours=24, slack_hours=24, interruptible=True)
        origin = "IN-MH"
        temporal_only = InterruptiblePolicy().schedule(
            job, small_dataset.series(origin), 100
        )
        combined = CombinedShiftingPolicy().schedule(job, small_dataset, origin, 100)
        assert combined.emissions_g <= temporal_only.emissions_g + 1e-9

    def test_beats_or_matches_pure_spatial(self, small_dataset):
        job = Job.batch(length_hours=24, slack_hours=168, interruptible=True)
        origin = "DE"
        spatial_only = OneMigrationPolicy().schedule(job, small_dataset, origin, 100)
        combined = CombinedShiftingPolicy().schedule(job, small_dataset, origin, 100)
        assert combined.emissions_g <= spatial_only.emissions_g + 1e-9

    def test_uses_custom_temporal_policy(self, small_dataset):
        job = Job.batch(length_hours=24, slack_hours=24)
        policy = CombinedShiftingPolicy(temporal_policy=DeferralPolicy())
        result = policy.schedule(job, small_dataset, "DE", 0)
        assert result.num_interruptions == 0


class TestCombinedSweep:
    def test_breakdown_components(self, small_dataset):
        sweep = CombinedSweep(small_dataset, length_hours=24, slack_hours=24)
        breakdown = sweep.breakdown("IN-MH", "SE")
        assert breakdown.spatial_reduction > 0
        assert breakdown.temporal_reduction >= 0
        assert breakdown.net_reduction == pytest.approx(
            breakdown.spatial_reduction + breakdown.temporal_reduction
        )

    def test_migrating_to_dirty_region_is_negative_spatially(self, small_dataset):
        sweep = CombinedSweep(small_dataset, length_hours=24, slack_hours=24)
        breakdown = sweep.breakdown("SE", "IN-MH")
        assert breakdown.spatial_reduction < 0

    def test_global_breakdown_spatial_dominates_for_greenest(self, small_dataset):
        sweep = CombinedSweep(small_dataset, length_hours=24, slack_hours=24)
        breakdown = sweep.global_breakdown(small_dataset.greenest_region())
        assert breakdown.spatial_reduction > breakdown.temporal_reduction

    def test_invalid_parameters(self, small_dataset):
        with pytest.raises(ConfigurationError):
            CombinedSweep(small_dataset, length_hours=0, slack_hours=24)
        with pytest.raises(ConfigurationError):
            CombinedSweep(small_dataset, length_hours=24, slack_hours=-1)
