"""Unit tests for forecasting, error injection and error impact."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ForecastError
from repro.forecast.error import UniformErrorModel, add_uniform_error
from repro.forecast.impact import spatial_error_impact, temporal_error_impact
from repro.forecast.models import ClimatologyForecaster, PersistenceForecaster, forecast_mape
from repro.timeseries.series import HourlySeries


class TestUniformErrorModel:
    def test_zero_error_is_identity(self, diurnal_trace):
        assert np.array_equal(
            UniformErrorModel(0.0).apply(diurnal_trace).values, diurnal_trace.values
        )

    def test_error_bounded_by_magnitude(self, diurnal_trace):
        model = UniformErrorModel(0.3, seed=1)
        forecast = model.apply(diurnal_trace)
        relative = np.abs(forecast.values - diurnal_trace.values) / diurnal_trace.values
        assert relative.max() <= 0.3 + 1e-9

    def test_deterministic_given_seed(self, diurnal_trace):
        a = UniformErrorModel(0.2, seed=3).apply(diurnal_trace)
        b = UniformErrorModel(0.2, seed=3).apply(diurnal_trace)
        assert np.array_equal(a.values, b.values)

    def test_values_stay_non_negative(self):
        trace = HourlySeries(np.full(100, 0.5))
        forecast = UniformErrorModel(1.0, seed=0).apply(trace)
        assert forecast.min() >= 0.0

    def test_mape_scales_with_magnitude(self, diurnal_trace):
        small = UniformErrorModel(0.1, seed=0).mean_absolute_percentage_error(diurnal_trace)
        large = UniformErrorModel(0.5, seed=0).mean_absolute_percentage_error(diurnal_trace)
        assert large > small
        assert small == pytest.approx(5.0, abs=2.0)

    def test_invalid_magnitude(self):
        with pytest.raises(ConfigurationError):
            UniformErrorModel(1.5)

    def test_convenience_wrapper(self, diurnal_trace):
        forecast = add_uniform_error(diurnal_trace, 0.2, seed=4)
        assert len(forecast) == len(diurnal_trace)


class TestForecasters:
    def test_persistence_repeats_last_value(self, diurnal_trace):
        history = diurnal_trace[0:100]
        prediction = PersistenceForecaster().forecast(history, 5)
        assert np.allclose(prediction, history[99])

    def test_climatology_matches_perfect_diurnal_pattern(self, diurnal_trace):
        mape = forecast_mape(ClimatologyForecaster(), diurnal_trace, split_hour=24 * 30,
                             horizon_hours=48)
        assert mape < 1.0

    def test_persistence_is_worse_than_climatology_on_periodic_trace(self, diurnal_trace):
        persistence = forecast_mape(PersistenceForecaster(), diurnal_trace, 24 * 30, 48)
        climatology = forecast_mape(ClimatologyForecaster(), diurnal_trace, 24 * 30, 48)
        assert climatology < persistence

    def test_climatology_requires_full_day(self):
        history = HourlySeries(np.arange(10.0))
        with pytest.raises(ForecastError):
            ClimatologyForecaster().forecast(history, 5)

    def test_invalid_horizon(self, diurnal_trace):
        with pytest.raises(ForecastError):
            PersistenceForecaster().forecast(diurnal_trace, 0)

    def test_forecast_mape_bounds_check(self, diurnal_trace):
        with pytest.raises(ForecastError):
            forecast_mape(PersistenceForecaster(), diurnal_trace, 8759, 100)


class TestTemporalErrorImpact:
    def test_zero_error_has_zero_impact(self, diurnal_trace):
        impact = temporal_error_impact(diurnal_trace, 24, 0.0)
        assert impact.carbon_increase == pytest.approx(0.0)
        assert impact.carbon_increase_percent == pytest.approx(0.0)

    def test_error_never_reduces_emissions(self, small_dataset):
        trace = small_dataset.series("US-CA")
        for magnitude in (0.1, 0.3, 0.5):
            impact = temporal_error_impact(trace, 24, magnitude, seed=2)
            assert impact.carbon_increase >= -1e-9

    def test_impact_grows_with_error(self, small_dataset):
        trace = small_dataset.series("US-CA")
        small = temporal_error_impact(trace, 24, 0.1, seed=3)
        large = temporal_error_impact(trace, 24, 0.5, seed=3)
        assert large.carbon_increase >= small.carbon_increase - 1e-9

    def test_invalid_length(self, diurnal_trace):
        with pytest.raises(ConfigurationError):
            temporal_error_impact(diurnal_trace, 0, 0.1)
        with pytest.raises(ConfigurationError):
            temporal_error_impact(diurnal_trace, 9000, 0.1)


class TestSpatialErrorImpact:
    def test_zero_error_has_zero_impact(self, small_dataset):
        impact = spatial_error_impact(small_dataset, 0.0)
        assert impact.carbon_increase == pytest.approx(0.0)

    def test_error_never_reduces_emissions(self, small_dataset):
        impact = spatial_error_impact(small_dataset, 0.5, seed=1)
        assert impact.carbon_increase >= -1e-9

    def test_candidate_restriction(self, small_dataset):
        impact = spatial_error_impact(small_dataset, 0.3, candidates=("SE", "US-CA"))
        assert impact.error_free_emissions > 0

    def test_empty_candidates_rejected(self, small_dataset):
        with pytest.raises(ConfigurationError):
            spatial_error_impact(small_dataset, 0.3, candidates=())

    def test_per_region_error_draws_are_distinct(self):
        """Every candidate region must draw its own forecast noise.

        Two regions whose traces keep a strict 1 % ordering can only swap in
        the *believed* ranking if their noise differs: a shared draw
        multiplies both rows by the same factors, preserves the order
        everywhere, and would make the carbon increase exactly zero.
        """
        from repro import CarbonDataset, default_catalog

        rng = np.random.default_rng(23)
        base = rng.uniform(200.0, 400.0, size=2000)
        catalog = default_catalog().subset(("SE", "DE"))
        dataset = CarbonDataset.from_traces(
            catalog,
            {
                ("SE", 2022): HourlySeries(base, name="SE"),
                ("DE", 2022): HourlySeries(base * 1.01, name="DE"),
            },
        )
        impact = spatial_error_impact(dataset, 0.3, seed=4)
        assert impact.carbon_increase > 0.0

    def test_apply_values_matches_apply(self, diurnal_trace):
        model = UniformErrorModel(magnitude=0.25, seed=9)
        np.testing.assert_array_equal(
            model.apply(diurnal_trace).values, model.apply_values(diurnal_trace.values)
        )
        # Zero magnitude is the identity on values.
        identity = UniformErrorModel(magnitude=0.0, seed=9)
        np.testing.assert_array_equal(
            identity.apply_values(diurnal_trace.values), diurnal_trace.values
        )
