"""Randomized differential tests: slot/queue engines vs per-job reference.

The hand-built equivalence workloads in ``test_cloud_scheduler_sim.py`` pin
known-tricky schedules; this sweep complements them with seeded *random*
workloads — varying slot counts, job lengths, slack, interruptible and
migratable fractions, arrival patterns and trace shapes — and asserts the
equivalence **three ways** across all five fleet admissions (``fifo``,
``carbon-aware``, ``carbon-aware-preemptive``, plus the two forecast-driven
variants, which the reference loop models with a policy subclass deciding
on the forecast series):

* batched event-frontier engine ≡ event-driven engine, **bit-identical**
  per-job outcomes (both charge the same prefix-sum segment expressions);
* engines ≡ :meth:`ClusterSimulator.run_reference`: decisions (completions,
  queue depths, delays, suspensions) exactly, emissions to within
  float-addition associativity (the engines charge per segment on a prefix
  sum, the reference loop per hour).

Besides the 30 random seeds, dedicated *scale-shape* scenarios exercise the
frontier paths the random sweep rarely stresses: cohorts of many one-hour
jobs arriving together, a single saturated slot behind a deep queue, and an
all-interruptible workload under heavy suspension churn.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.engine import (
    ADMISSION_CARBON_AWARE,
    ADMISSION_CARBON_AWARE_PREEMPTIVE,
    ADMISSION_FIFO,
    AUTO_BATCH_MIN_JOBS,
    ENGINE_AUTO,
    ENGINE_BATCHED,
    ENGINE_EVENT,
    simulate_slot_queue,
)
from repro.cloud.scheduler_sim import (
    CarbonAwareSchedulingPolicy,
    ClusterSimulator,
    FifoSchedulingPolicy,
    PreemptiveCarbonAwareSchedulingPolicy,
)
from repro.forecast.error import UniformErrorModel
from repro.timeseries.series import HourlySeries
from repro.workloads.generator import ClusterTraceGenerator, GeneratorConfig
from repro.workloads.distributions import JobLengthDistribution
from repro.workloads.job import Job
from repro.workloads.traces import ClusterTrace, TraceJob

#: A few dozen seeds keeps the sweep meaningful while staying tier-1 cheap.
SEEDS = tuple(range(30))

#: Deterministic scale-shape scenarios aimed at the batched engine's
#: frontier paths (cohort admission, deep-queue laziness, suspension churn).
SCALE_SHAPES = ("many-short", "single-saturated-slot", "all-interruptible")


class _ForecastAwarePolicy(CarbonAwareSchedulingPolicy):
    """Reference-loop model of forecast admission: the threshold rule decides
    on a stored forecast series while the simulator charges the true trace."""

    name = "forecast"

    def __init__(self, decision_trace: HourlySeries) -> None:
        self.decision_trace = decision_trace

    def wants_to_start(self, job, hour, trace):
        return super().wants_to_start(job, hour, self.decision_trace)


class _ForecastPreemptivePolicy(_ForecastAwarePolicy):
    name = "forecast-preemptive"
    preemptive = True


def _random_scenario(seed: int):
    """One seeded random (trace, forecast, workload, slots) scenario."""
    rng = np.random.default_rng(seed)
    horizon = int(rng.integers(200, 500))
    num_jobs = int(rng.integers(15, 50))
    slots = int(rng.integers(1, 5))
    lengths = sorted(rng.choice([1.0, 2.0, 3.0, 5.0, 8.0, 13.0], size=3, replace=False))
    distribution = JobLengthDistribution(
        f"random-{seed}", {length: float(w) for length, w in
                           zip(lengths, rng.uniform(0.2, 1.0, size=3))}
    )
    generator = ClusterTraceGenerator(
        GeneratorConfig(
            num_jobs=num_jobs,
            interactive_fraction=float(rng.uniform(0.0, 0.5)),
            batch_slack_hours=float(rng.choice([0.0, 6.0, 24.0, 72.0])),
            # Arrivals inside the first ~2/3 so queues actually drain.
            horizon_hours=max(int(horizon * rng.uniform(0.3, 0.7)), 1),
            diurnal_arrivals=bool(rng.integers(0, 2)),
            seed=seed,
        ),
        length_distribution=distribution,
    )
    workload = generator.generate_mixed(
        ["X"],
        migratable_fraction=float(rng.uniform(0.0, 1.0)),
        interruptible_fraction=float(rng.uniform(0.0, 1.0)),
    )
    hours = np.arange(horizon)
    values = (
        rng.uniform(150.0, 450.0)
        + rng.uniform(20.0, 140.0) * np.cos(2 * np.pi * (hours - rng.integers(0, 24)) / 24.0)
        + rng.normal(0.0, rng.uniform(5.0, 40.0), horizon)
    )
    trace = HourlySeries(np.clip(values, 1.0, None), name="X")
    forecast = HourlySeries(
        UniformErrorModel(magnitude=float(rng.uniform(0.05, 0.4)), seed=seed + 1)
        .apply_values(trace.values),
        name="X-forecast",
    )
    return trace, forecast, workload, slots


def _scale_shape_scenario(kind: str):
    """A deterministic (trace, forecast, workload, slots) scale shape."""
    if kind == "many-short":
        # Cohorts of one/two-hour jobs arriving in bursts: big admission
        # frontiers, completion buckets with many members per end hour.
        rng = np.random.default_rng(101)
        horizon, n, slots = 320, 800, 6
        lengths = rng.choice([1.0, 2.0], size=n)
        slacks = rng.choice([0.0, 4.0, 12.0], size=n)
        arrivals = rng.integers(0, 200, size=n)
        interruptible = np.zeros(n, dtype=bool)
    elif kind == "single-saturated-slot":
        # One slot behind a deep queue: the lazy admission scan must stay
        # O(free) and the queue compaction must preserve arrival order.
        rng = np.random.default_rng(202)
        horizon, n, slots = 360, 400, 1
        lengths = rng.integers(1, 7, size=n).astype(float)
        slacks = rng.choice([0.0, 8.0, 24.0], size=n)
        arrivals = rng.integers(0, 120, size=n)
        interruptible = np.zeros(n, dtype=bool)
    elif kind == "all-interruptible":
        # Every job suspendable under generous slack: heavy suspension
        # frontiers and queue re-entry merges.
        rng = np.random.default_rng(303)
        horizon, n, slots = 400, 260, 3
        lengths = rng.integers(2, 9, size=n).astype(float)
        slacks = rng.choice([24.0, 48.0, 96.0], size=n)
        arrivals = rng.integers(0, 220, size=n)
        interruptible = np.ones(n, dtype=bool)
    else:  # pragma: no cover - guarded by the parametrize list
        raise ValueError(kind)
    jobs = [
        TraceJob(
            job=Job.batch(
                length_hours=float(lengths[i]),
                slack_hours=float(slacks[i]),
                interruptible=bool(interruptible[i]),
                name=f"{kind}-{i}",
            ),
            arrival_hour=int(arrivals[i]),
            origin_region="X",
        )
        for i in range(n)
    ]
    workload = ClusterTrace.from_jobs(jobs)
    hours = np.arange(horizon)
    values = (
        300.0
        + 120.0 * np.cos(2 * np.pi * (hours - 14) / 24.0)
        + rng.normal(0.0, 25.0, horizon)
    )
    trace = HourlySeries(np.clip(values, 1.0, None), name="X")
    forecast = HourlySeries(
        UniformErrorModel(magnitude=0.2, seed=7).apply_values(trace.values),
        name="X-forecast",
    )
    return trace, forecast, workload, slots


def _assert_equivalent(engine, reference):
    assert engine.completed_jobs == reference.completed_jobs
    assert engine.total_jobs == reference.total_jobs
    assert engine.mean_start_delay_hours == reference.mean_start_delay_hours
    assert engine.max_queue_length == reference.max_queue_length
    assert engine.suspensions == reference.suspensions
    assert engine.total_emissions_g == pytest.approx(
        reference.total_emissions_g, rel=1e-9, abs=1e-6
    )


def _assert_outcomes_bit_identical(batched, event):
    """Batched ≡ event engine, including per-job emissions bit-for-bit."""
    assert np.array_equal(batched.start_hours, event.start_hours)
    assert np.array_equal(batched.finish_hours, event.finish_hours)
    assert np.array_equal(batched.suspension_counts, event.suspension_counts)
    assert np.array_equal(batched.start_delays, event.start_delays)
    assert batched.max_queue_length == event.max_queue_length
    assert np.array_equal(batched.emissions_g, event.emissions_g)


def _both_engine_outcomes(trace, workload, slots, admission, decision=None):
    """Run both engines on one scenario and pin them bit-identical."""
    arrivals, lengths, deadlines, powers, interruptible = (
        workload.scheduling_arrays()
    )
    outcomes = {}
    for engine in (ENGINE_BATCHED, ENGINE_EVENT):
        outcomes[engine] = simulate_slot_queue(
            trace.values,
            arrivals,
            lengths,
            deadlines,
            powers,
            slots,
            admission=admission,
            decision_values=None if decision is None else decision.values,
            interruptible=interruptible,
            engine=engine,
        )
    _assert_outcomes_bit_identical(outcomes[ENGINE_BATCHED], outcomes[ENGINE_EVENT])
    return outcomes[ENGINE_BATCHED]


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_match_reference_on_random_workloads(seed):
    """Batched ≡ event ≡ reference loop on the three direct admissions."""
    trace, _, workload, slots = _random_scenario(seed)
    simulator = ClusterSimulator(trace, slots)
    for policy, admission in (
        (FifoSchedulingPolicy(), ADMISSION_FIFO),
        (CarbonAwareSchedulingPolicy(), ADMISSION_CARBON_AWARE),
        (PreemptiveCarbonAwareSchedulingPolicy(), ADMISSION_CARBON_AWARE_PREEMPTIVE),
    ):
        _both_engine_outcomes(trace, workload, slots, admission)
        batched = simulator.run(workload, policy, engine=ENGINE_BATCHED)
        event = simulator.run(workload, policy, engine=ENGINE_EVENT)
        # Bit-identical per-job arrays make the aggregate results equal too.
        assert batched == event
        reference = simulator.run_reference(workload, policy)
        _assert_equivalent(batched, reference)


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_match_reference_on_forecast_admissions(seed):
    """Engines with ``decision_values`` ≡ reference loop deciding on the
    forecast series, for both forecast-driven admissions."""
    trace, forecast, workload, slots = _random_scenario(seed)
    simulator = ClusterSimulator(trace, slots)
    for policy, admission in (
        (_ForecastAwarePolicy(forecast), ADMISSION_CARBON_AWARE),
        (_ForecastPreemptivePolicy(forecast), ADMISSION_CARBON_AWARE_PREEMPTIVE),
    ):
        outcome = _both_engine_outcomes(
            trace, workload, slots, admission, decision=forecast
        )
        reference = simulator.run_reference(workload, policy)
        assert outcome.completed_jobs == reference.completed_jobs
        assert outcome.mean_start_delay_hours() == reference.mean_start_delay_hours
        assert outcome.max_queue_length == reference.max_queue_length
        assert outcome.total_suspensions == reference.suspensions
        assert outcome.total_emissions_g() == pytest.approx(
            reference.total_emissions_g, rel=1e-9, abs=1e-6
        )


@pytest.mark.parametrize("kind", SCALE_SHAPES)
def test_engines_match_reference_on_scale_shapes(kind):
    """Three-way equivalence on the frontier-stressing scale shapes, across
    all five admissions."""
    trace, forecast, workload, slots = _scale_shape_scenario(kind)
    simulator = ClusterSimulator(trace, slots)
    for policy, admission, decision in (
        (FifoSchedulingPolicy(), ADMISSION_FIFO, None),
        (CarbonAwareSchedulingPolicy(), ADMISSION_CARBON_AWARE, None),
        (
            PreemptiveCarbonAwareSchedulingPolicy(),
            ADMISSION_CARBON_AWARE_PREEMPTIVE,
            None,
        ),
        (_ForecastAwarePolicy(forecast), ADMISSION_CARBON_AWARE, forecast),
        (
            _ForecastPreemptivePolicy(forecast),
            ADMISSION_CARBON_AWARE_PREEMPTIVE,
            forecast,
        ),
    ):
        outcome = _both_engine_outcomes(
            trace, workload, slots, admission, decision=decision
        )
        reference = simulator.run_reference(workload, policy)
        assert outcome.completed_jobs == reference.completed_jobs
        assert outcome.mean_start_delay_hours() == reference.mean_start_delay_hours
        assert outcome.max_queue_length == reference.max_queue_length
        assert outcome.total_suspensions == reference.suspensions
        assert outcome.total_emissions_g() == pytest.approx(
            reference.total_emissions_g, rel=1e-9, abs=1e-6
        )


def test_scale_shapes_exercise_the_frontier_paths():
    """Meta-check: the scale shapes actually produce deep queues, dense
    admission cohorts and suspension churn."""
    trace, _, many_short, slots = _scale_shape_scenario("many-short")
    fifo = ClusterSimulator(trace, slots).run(many_short, FifoSchedulingPolicy())
    assert fifo.max_queue_length > 5 * slots  # dense cohorts actually queue up

    trace, _, saturated, slots = _scale_shape_scenario("single-saturated-slot")
    assert slots == 1
    fifo = ClusterSimulator(trace, slots).run(saturated, FifoSchedulingPolicy())
    assert fifo.max_queue_length > 100  # deep queue behind the single slot

    trace, _, interruptible, slots = _scale_shape_scenario("all-interruptible")
    preemptive = ClusterSimulator(trace, slots).run(
        interruptible, PreemptiveCarbonAwareSchedulingPolicy()
    )
    assert preemptive.suspensions > 20  # real suspension churn


def test_random_sweep_exercises_every_admission_path():
    """Meta-check: across the seeds, the sweep actually hits contention,
    suspensions and deferrals — not just trivially idle schedules."""
    saw_queue = saw_suspension = saw_deferral = False
    for seed in SEEDS:
        trace, _, workload, slots = _random_scenario(seed)
        simulator = ClusterSimulator(trace, slots)
        fifo = simulator.run(workload, FifoSchedulingPolicy())
        preemptive = simulator.run(workload, PreemptiveCarbonAwareSchedulingPolicy())
        saw_queue = saw_queue or fifo.max_queue_length > slots
        saw_suspension = saw_suspension or preemptive.suspensions > 0
        saw_deferral = saw_deferral or (
            preemptive.mean_start_delay_hours > fifo.mean_start_delay_hours
        )
    assert saw_queue and saw_suspension and saw_deferral


def test_auto_engine_matches_explicit_engines_on_every_admission():
    """``auto`` ≡ batched ≡ event on all three direct admissions — the
    dispatcher must be outcome-invisible whichever kernel it picks."""
    trace, _, workload, slots = _random_scenario(3)
    arrivals, lengths, deadlines, powers, interruptible = (
        workload.scheduling_arrays()
    )
    for admission in (
        ADMISSION_FIFO,
        ADMISSION_CARBON_AWARE,
        ADMISSION_CARBON_AWARE_PREEMPTIVE,
    ):
        outcomes = {
            engine: simulate_slot_queue(
                trace.values, arrivals, lengths, deadlines, powers, slots,
                admission=admission, interruptible=interruptible, engine=engine,
            )
            for engine in (ENGINE_AUTO, ENGINE_BATCHED, ENGINE_EVENT)
        }
        _assert_outcomes_bit_identical(outcomes[ENGINE_AUTO], outcomes[ENGINE_BATCHED])
        _assert_outcomes_bit_identical(outcomes[ENGINE_AUTO], outcomes[ENGINE_EVENT])


def test_auto_engine_selects_by_job_count(monkeypatch):
    """The default ``auto`` engine dispatches on the per-path crossover:
    event kernel below ``AUTO_BATCH_MIN_JOBS``, batched kernel at/above it
    — and either way the outcome equals both explicit engines."""
    import repro.cloud.engine as engine_module
    import repro.cloud.engine_batched as batched_module

    trace, _, workload, slots = _random_scenario(0)
    arrivals, lengths, deadlines, powers, interruptible = (
        workload.scheduling_arrays()
    )

    def run(engine):
        return simulate_slot_queue(
            trace.values, arrivals, lengths, deadlines, powers, slots,
            admission=ADMISSION_CARBON_AWARE_PREEMPTIVE,
            interruptible=interruptible, engine=engine,
        )

    _assert_outcomes_bit_identical(run(ENGINE_AUTO), run(ENGINE_BATCHED))
    _assert_outcomes_bit_identical(run(ENGINE_AUTO), run(ENGINE_EVENT))

    calls = []
    real_event = engine_module.simulate_slot_queue_event
    real_batched = batched_module.simulate_slot_queue_batched
    monkeypatch.setattr(
        engine_module, "simulate_slot_queue_event",
        lambda *a, **k: calls.append(ENGINE_EVENT) or real_event(*a, **k),
    )
    monkeypatch.setattr(
        batched_module, "simulate_slot_queue_batched",
        lambda *a, **k: calls.append(ENGINE_BATCHED) or real_batched(*a, **k),
    )
    # This scenario is far below both crossovers -> event kernel.
    assert len(arrivals) < min(AUTO_BATCH_MIN_JOBS.values())
    run(ENGINE_AUTO)
    assert calls == [ENGINE_EVENT]
    # Lower the crossover beneath the scenario -> batched kernel.
    monkeypatch.setitem(AUTO_BATCH_MIN_JOBS, True, len(arrivals))
    run(ENGINE_AUTO)
    assert calls == [ENGINE_EVENT, ENGINE_BATCHED]
