"""Randomized differential tests: slot/queue engine vs per-job reference loop.

The hand-built equivalence workloads in ``test_cloud_scheduler_sim.py`` pin
known-tricky schedules; this sweep complements them with seeded *random*
workloads — varying slot counts, job lengths, slack, interruptible and
migratable fractions, arrival patterns and trace shapes — and asserts that
:func:`repro.cloud.engine.simulate_slot_queue` reproduces
:meth:`ClusterSimulator.run_reference` across **all five** fleet admissions:
``fifo``, ``carbon-aware`` and ``carbon-aware-preemptive`` directly, plus
the two forecast-driven variants (decide on an error-injected trace, pay
the true one), which the reference loop models with a policy subclass that
evaluates the threshold rule on the forecast series.

Decisions (completions, queue depths, delays, suspensions) must match
exactly; emissions to within float-addition associativity (the engine
charges per segment on a prefix sum, the reference loop per hour).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.engine import (
    ADMISSION_CARBON_AWARE,
    ADMISSION_CARBON_AWARE_PREEMPTIVE,
    simulate_slot_queue,
)
from repro.cloud.scheduler_sim import (
    CarbonAwareSchedulingPolicy,
    ClusterSimulator,
    FifoSchedulingPolicy,
    PreemptiveCarbonAwareSchedulingPolicy,
)
from repro.forecast.error import UniformErrorModel
from repro.timeseries.series import HourlySeries
from repro.workloads.generator import ClusterTraceGenerator, GeneratorConfig
from repro.workloads.distributions import JobLengthDistribution

#: A few dozen seeds keeps the sweep meaningful while staying tier-1 cheap.
SEEDS = tuple(range(30))


class _ForecastAwarePolicy(CarbonAwareSchedulingPolicy):
    """Reference-loop model of forecast admission: the threshold rule decides
    on a stored forecast series while the simulator charges the true trace."""

    name = "forecast"

    def __init__(self, decision_trace: HourlySeries) -> None:
        self.decision_trace = decision_trace

    def wants_to_start(self, job, hour, trace):
        return super().wants_to_start(job, hour, self.decision_trace)


class _ForecastPreemptivePolicy(_ForecastAwarePolicy):
    name = "forecast-preemptive"
    preemptive = True


def _random_scenario(seed: int):
    """One seeded random (trace, forecast, workload, slots) scenario."""
    rng = np.random.default_rng(seed)
    horizon = int(rng.integers(200, 500))
    num_jobs = int(rng.integers(15, 50))
    slots = int(rng.integers(1, 5))
    lengths = sorted(rng.choice([1.0, 2.0, 3.0, 5.0, 8.0, 13.0], size=3, replace=False))
    distribution = JobLengthDistribution(
        f"random-{seed}", {length: float(w) for length, w in
                           zip(lengths, rng.uniform(0.2, 1.0, size=3))}
    )
    generator = ClusterTraceGenerator(
        GeneratorConfig(
            num_jobs=num_jobs,
            interactive_fraction=float(rng.uniform(0.0, 0.5)),
            batch_slack_hours=float(rng.choice([0.0, 6.0, 24.0, 72.0])),
            # Arrivals inside the first ~2/3 so queues actually drain.
            horizon_hours=max(int(horizon * rng.uniform(0.3, 0.7)), 1),
            diurnal_arrivals=bool(rng.integers(0, 2)),
            seed=seed,
        ),
        length_distribution=distribution,
    )
    workload = generator.generate_mixed(
        ["X"],
        migratable_fraction=float(rng.uniform(0.0, 1.0)),
        interruptible_fraction=float(rng.uniform(0.0, 1.0)),
    )
    hours = np.arange(horizon)
    values = (
        rng.uniform(150.0, 450.0)
        + rng.uniform(20.0, 140.0) * np.cos(2 * np.pi * (hours - rng.integers(0, 24)) / 24.0)
        + rng.normal(0.0, rng.uniform(5.0, 40.0), horizon)
    )
    trace = HourlySeries(np.clip(values, 1.0, None), name="X")
    forecast = HourlySeries(
        UniformErrorModel(magnitude=float(rng.uniform(0.05, 0.4)), seed=seed + 1)
        .apply_values(trace.values),
        name="X-forecast",
    )
    return trace, forecast, workload, slots


def _assert_equivalent(engine, reference):
    assert engine.completed_jobs == reference.completed_jobs
    assert engine.total_jobs == reference.total_jobs
    assert engine.mean_start_delay_hours == reference.mean_start_delay_hours
    assert engine.max_queue_length == reference.max_queue_length
    assert engine.suspensions == reference.suspensions
    assert engine.total_emissions_g == pytest.approx(
        reference.total_emissions_g, rel=1e-9, abs=1e-6
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_matches_reference_on_random_workloads(seed):
    """Engine ≡ reference loop on the three direct admissions."""
    trace, _, workload, slots = _random_scenario(seed)
    simulator = ClusterSimulator(trace, slots)
    for policy in (
        FifoSchedulingPolicy(),
        CarbonAwareSchedulingPolicy(),
        PreemptiveCarbonAwareSchedulingPolicy(),
    ):
        engine = simulator.run(workload, policy)
        reference = simulator.run_reference(workload, policy)
        _assert_equivalent(engine, reference)


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_matches_reference_on_forecast_admissions(seed):
    """Engine with ``decision_values`` ≡ reference loop deciding on the
    forecast series, for both forecast-driven admissions."""
    trace, forecast, workload, slots = _random_scenario(seed)
    simulator = ClusterSimulator(trace, slots)
    arrivals, lengths, deadlines, powers, interruptible = workload.scheduling_arrays()
    order = np.argsort(arrivals, kind="stable")
    for policy, admission in (
        (_ForecastAwarePolicy(forecast), ADMISSION_CARBON_AWARE),
        (_ForecastPreemptivePolicy(forecast), ADMISSION_CARBON_AWARE_PREEMPTIVE),
    ):
        outcome = simulate_slot_queue(
            trace.values,
            arrivals,
            lengths,
            deadlines,
            powers,
            slots,
            admission=admission,
            decision_values=forecast.values,
            interruptible=interruptible,
        )
        reference = simulator.run_reference(workload, policy)
        assert outcome.completed_jobs == reference.completed_jobs
        assert outcome.mean_start_delay_hours() == reference.mean_start_delay_hours
        assert outcome.max_queue_length == reference.max_queue_length
        assert outcome.total_suspensions == reference.suspensions
        # Accumulate in arrival order to mirror the reference loop's sum.
        assert float(sum(outcome.emissions_g[order].tolist())) == pytest.approx(
            reference.total_emissions_g, rel=1e-9, abs=1e-6
        )


def test_random_sweep_exercises_every_admission_path():
    """Meta-check: across the seeds, the sweep actually hits contention,
    suspensions and deferrals — not just trivially idle schedules."""
    saw_queue = saw_suspension = saw_deferral = False
    for seed in SEEDS:
        trace, _, workload, slots = _random_scenario(seed)
        simulator = ClusterSimulator(trace, slots)
        fifo = simulator.run(workload, FifoSchedulingPolicy())
        preemptive = simulator.run(workload, PreemptiveCarbonAwareSchedulingPolicy())
        saw_queue = saw_queue or fifo.max_queue_length > slots
        saw_suspension = saw_suspension or preemptive.suspensions > 0
        saw_deferral = saw_deferral or (
            preemptive.mean_start_delay_hours > fifo.mean_start_delay_hours
        )
    assert saw_queue and saw_suspension and saw_deferral
