"""Tests for the experiment-registry contract checker.

The live registry must validate clean; deliberately broken stand-in specs
must produce one precise finding per violated contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.devtools.contracts import (
    KIND_BAD_ENTRY_POINT,
    KIND_CAST_MISMATCH,
    KIND_OPTION_NOT_ACCEPTED,
    KIND_UNKNOWN_OPTION,
    check_contracts,
    check_experiment,
    check_option_casts,
    main as contracts_main,
)
from repro.experiments.registry import list_experiments
from repro.runtime.config import _OPTION_CASTS, OPTION_FIELDS, RunConfig


@dataclass(frozen=True)
class FakeSpec:
    """Minimal stand-in mirroring the ExperimentSpec surface contracts use."""

    identifier: str
    run: object
    options: frozenset = field(default_factory=frozenset)
    needs_dataset: bool = True


def run_good(dataset, workers=None, seed=None):
    return dataset


def run_no_workers(dataset, seed=None):
    return dataset


def run_var_kw(dataset, **kwargs):
    return dataset


def run_keyword_only_dataset(*, seed=None):
    return seed


class TestLiveRegistry:
    def test_live_registry_is_clean(self):
        findings = check_contracts()
        formatted = "\n".join(finding.format() for finding in findings)
        assert not findings, f"registry contract violations:\n{formatted}"

    def test_live_registry_is_nontrivial(self):
        assert len(list_experiments()) >= 10

    def test_spillover_threshold_routes_as_float(self):
        # The float-routed option the cast contract exists for: losing the
        # _OPTION_CASTS entry must be a detected violation, not a silent
        # truncation of every fractional threshold to int.
        assert _OPTION_CASTS.get("spillover_threshold") is float
        broken = {k: v for k, v in _OPTION_CASTS.items() if k != "spillover_threshold"}
        findings = check_option_casts(OPTION_FIELDS, broken, RunConfig)
        assert len(findings) == 1
        assert findings[0].kind == KIND_CAST_MISMATCH
        assert "spillover_threshold" in findings[0].message


class TestExperimentContracts:
    def test_undeclared_option_field_is_flagged(self):
        spec = FakeSpec("fake", run_good, frozenset({"workers", "not_a_field"}))
        findings = check_experiment(spec, OPTION_FIELDS)
        assert len(findings) == 1
        assert findings[0].kind == KIND_UNKNOWN_OPTION
        assert findings[0].experiment == "fake"
        assert "not_a_field" in findings[0].message

    def test_option_missing_from_signature_is_flagged(self):
        spec = FakeSpec("fake", run_no_workers, frozenset({"workers", "seed"}))
        findings = check_experiment(spec, OPTION_FIELDS)
        assert len(findings) == 1
        assert findings[0].kind == KIND_OPTION_NOT_ACCEPTED
        assert "'workers'" in findings[0].message

    def test_var_keyword_accepts_everything(self):
        spec = FakeSpec("fake", run_var_kw, frozenset(OPTION_FIELDS))
        assert check_experiment(spec, OPTION_FIELDS) == []

    def test_needs_dataset_without_positional_is_flagged(self):
        spec = FakeSpec("fake", run_keyword_only_dataset, frozenset({"seed"}))
        findings = check_experiment(spec, OPTION_FIELDS)
        assert len(findings) == 1
        assert findings[0].kind == KIND_BAD_ENTRY_POINT

    def test_uninspectable_entry_point_is_flagged(self):
        spec = FakeSpec("fake", len, frozenset())
        findings = check_experiment(spec, OPTION_FIELDS)
        assert findings == [] or findings[0].kind == KIND_BAD_ENTRY_POINT

    def test_injected_specs_flow_through_check_contracts(self):
        spec = FakeSpec("fake", run_no_workers, frozenset({"workers"}))
        findings = check_contracts(experiments=[spec])
        assert [f.kind for f in findings] == [KIND_OPTION_NOT_ACCEPTED]


class TestOptionCasts:
    def test_unannotated_option_field_is_flagged(self):
        findings = check_option_casts(["no_such_field"], {}, RunConfig)
        assert len(findings) == 1
        assert findings[0].kind == KIND_UNKNOWN_OPTION

    def test_int_fields_pass_with_default_cast(self):
        int_fields = [f for f in OPTION_FIELDS if f not in _OPTION_CASTS]
        assert check_option_casts(int_fields, {}, RunConfig) == []

    def test_path_field_requires_its_cast(self):
        """`data_dir` is Path-annotated: the default int cast must be flagged
        and the registered Path cast accepted."""
        findings = check_option_casts(["data_dir"], {}, RunConfig)
        assert [f.kind for f in findings] == ["option-cast-mismatch"]
        assert check_option_casts(["data_dir"], {"data_dir": Path}, RunConfig) == []


class TestContractsCli:
    def test_cli_exits_zero_on_live_registry(self, capsys):
        assert contracts_main([]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_cli_json_output(self, capsys):
        assert contracts_main(["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["experiments_checked"] == len(list_experiments())

    def test_cli_rejects_unknown_flag(self):
        with pytest.raises(SystemExit):
            contracts_main(["--nope"])
