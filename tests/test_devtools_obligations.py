"""Tests for the equivalence-obligation checker.

Synthetic fixtures prove each obligation family *fires* — in particular
that deleting a single engine×admission parametrization from an otherwise
full differential matrix is detected — and the live check proves the
repository currently discharges every obligation.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field

from repro.devtools.obligations import (
    KIND_MISSING_FLEET_KIND,
    KIND_MISSING_PAIR,
    KIND_MISSING_SERIAL_POOLED,
    check_engine_admission_matrix,
    check_fleet_coverage,
    check_obligations,
    check_serial_pooled,
    constant_name,
)

ENGINES = ("auto", "batched")
ADMISSIONS = ("fifo", "carbon-aware")

#: A minimal differential module exercising the full 2×2 matrix: one test
#: covers batched×both-admissions through a helper, one covers auto×both.
FULL_MATRIX = textwrap.dedent(
    """
    def _run_pair(engine, admission):
        return simulate(engine=engine, admission=admission)

    def test_batched_matrix():
        for admission in (ADMISSION_FIFO, ADMISSION_CARBON_AWARE):
            _run_pair(ENGINE_BATCHED, admission)

    def test_auto_matrix():
        for admission in ("fifo", "carbon-aware"):
            _run_pair("auto", admission)
    """
)


@dataclass(frozen=True)
class FakeSpec:
    identifier: str
    run: object
    options: frozenset = field(default_factory=frozenset)


def run_fake(dataset, workers=None):  # pragma: no cover - never called
    raise AssertionError


class TestConstantName:
    def test_engine_and_admission_spellings(self):
        assert constant_name("ENGINE", "batched") == "ENGINE_BATCHED"
        assert (
            constant_name("ADMISSION", "carbon-aware-preemptive")
            == "ADMISSION_CARBON_AWARE_PREEMPTIVE"
        )
        assert constant_name("PLACEMENT", "spillover") == "PLACEMENT_SPILLOVER"


class TestEngineAdmissionMatrix:
    def test_full_matrix_is_clean(self):
        assert check_engine_admission_matrix(FULL_MATRIX, ENGINES, ADMISSIONS) == []

    def test_deleting_one_parametrization_fires(self):
        """The acceptance property: drop one admission from one test and
        the corresponding pair becomes an undischarged obligation."""
        eroded = FULL_MATRIX.replace(
            'for admission in ("fifo", "carbon-aware"):',
            'for admission in ("fifo",):',
        )
        findings = check_engine_admission_matrix(eroded, ENGINES, ADMISSIONS)
        assert [f.obligation for f in findings] == ["auto×carbon-aware"]
        assert findings[0].kind == KIND_MISSING_PAIR

    def test_pairs_must_cooccur_in_one_test(self):
        """An engine in one test and an admission in another is not a
        differential run of the *pair*."""
        split = textwrap.dedent(
            """
            def test_engine_only():
                simulate(engine=ENGINE_BATCHED)

            def test_admission_only():
                simulate(admission=ADMISSION_FIFO)
            """
        )
        findings = check_engine_admission_matrix(split, ("batched",), ("fifo",))
        assert [f.obligation for f in findings] == ["batched×fifo"]

    def test_helper_closure_counts(self):
        """Kinds spelled inside a helper the test calls are attributed to
        the test through the reference closure."""
        via_helper = textwrap.dedent(
            """
            def _all_admissions(engine):
                for admission in (ADMISSION_FIFO,):
                    simulate(engine=engine, admission=admission)

            def test_batched():
                _all_admissions(ENGINE_BATCHED)
            """
        )
        assert check_engine_admission_matrix(via_helper, ("batched",), ("fifo",)) == []

    def test_new_kind_creates_new_obligations(self):
        """Registering a new engine kind instantly opens obligations for
        every admission — nothing to update in the checker."""
        findings = check_engine_admission_matrix(
            FULL_MATRIX, (*ENGINES, "vectorised"), ADMISSIONS
        )
        assert {f.obligation for f in findings} == {
            "vectorised×fifo",
            "vectorised×carbon-aware",
        }


class TestFleetCoverage:
    def test_all_kinds_referenced_is_clean(self):
        source = "KINDS = (ADMISSION_FORECAST, PLACEMENT_SPILLOVER, 'origin')\n"
        assert (
            check_fleet_coverage(source, ("forecast",), ("spillover", "origin")) == []
        )

    def test_unreferenced_kind_fires(self):
        findings = check_fleet_coverage("x = 1\n", ("forecast",), ("origin",))
        assert {f.obligation for f in findings} == {"forecast", "origin"}
        assert all(f.kind == KIND_MISSING_FLEET_KIND for f in findings)


class TestSerialPooled:
    GOOD = textwrap.dedent(
        """
        def test_rows_identical(dataset):
            serial = run_fake(dataset)
            pooled = run_fake(dataset, workers=2)
            assert serial.rows() == pooled.rows()
        """
    )

    def test_workers_call_plus_equality_assert_discharges(self):
        spec = FakeSpec("fake", run_fake, frozenset({"workers"}))
        assert check_serial_pooled([spec], {"tests/test_x.py": self.GOOD}) == []

    def test_missing_test_fires(self):
        spec = FakeSpec("fake", run_fake, frozenset({"workers"}))
        findings = check_serial_pooled([spec], {"tests/test_x.py": "x = 1\n"})
        assert [f.obligation for f in findings] == ["fake"]
        assert findings[0].kind == KIND_MISSING_SERIAL_POOLED

    def test_workers_call_without_equality_assert_fires(self):
        no_assert = self.GOOD.replace(
            "assert serial.rows() == pooled.rows()", "assert pooled.rows()"
        )
        spec = FakeSpec("fake", run_fake, frozenset({"workers"}))
        findings = check_serial_pooled([spec], {"tests/test_x.py": no_assert})
        assert [f.obligation for f in findings] == ["fake"]

    def test_fixture_supplied_serial_half_counts(self):
        """The fleet idiom: the serial run comes from a fixture, so only
        one workers= call appears in the test body."""
        fixture_style = textwrap.dedent(
            """
            def test_pooled_matches(serial_sweep, dataset):
                pooled = run_fake(dataset, workers=2)
                assert serial_sweep.rows() == pooled.rows()
            """
        )
        spec = FakeSpec("fake", run_fake, frozenset({"workers"}))
        assert check_serial_pooled([spec], {"tests/test_x.py": fixture_style}) == []

    def test_experiments_without_workers_carry_no_obligation(self):
        spec = FakeSpec("fake", run_fake, frozenset())
        assert check_serial_pooled([spec], {"tests/test_x.py": "x = 1\n"}) == []


class TestLiveRepository:
    def test_every_obligation_is_discharged(self):
        """The repository's own matrix is full and every workers experiment
        has its serial≡pooled proof (the CI gate runs the same check)."""
        assert check_obligations() == []
