"""Unit tests for the spatial shifting policies."""

import numpy as np
import pytest

from repro.cloud.latency import LatencyModel
from repro.core.result import ScheduleResult
from repro.exceptions import ConfigurationError
from repro.grid.region import GeographicGroup
from repro.scheduling.spatial import (
    CandidateSelector,
    InfiniteMigrationPolicy,
    OneMigrationPolicy,
    SpatialSweep,
)
from repro.workloads.job import Job


class TestCandidateSelector:
    def test_global_scope_returns_all(self, small_dataset):
        selector = CandidateSelector(scope="global")
        assert set(selector.candidates(small_dataset, "SE")) == set(small_dataset.codes())

    def test_group_scope_restricts_to_continent(self, small_dataset):
        selector = CandidateSelector(scope="group")
        candidates = selector.candidates(small_dataset, "DE")
        groups = {small_dataset.region(code).group for code in candidates}
        assert groups == {GeographicGroup.EUROPE}

    def test_origin_scope(self, small_dataset):
        selector = CandidateSelector(scope="origin")
        assert selector.candidates(small_dataset, "SG") == ("SG",)

    def test_allowed_codes_intersection(self, small_dataset):
        selector = CandidateSelector(allowed_codes=("SE", "US-CA"))
        candidates = selector.candidates(small_dataset, "IN-MH")
        assert set(candidates) == {"SE", "US-CA", "IN-MH"}

    def test_origin_always_included(self, small_dataset):
        selector = CandidateSelector(allowed_codes=("SE",))
        assert "SG" in selector.candidates(small_dataset, "SG")

    def test_latency_constraint_shrinks_candidates(self, small_dataset):
        tight = CandidateSelector(latency_model=LatencyModel(), latency_slo_ms=30.0)
        loose = CandidateSelector(latency_model=LatencyModel(), latency_slo_ms=400.0)
        assert len(tight.candidates(small_dataset, "DE")) <= len(
            loose.candidates(small_dataset, "DE")
        )

    def test_require_datacenter(self, small_dataset):
        selector = CandidateSelector(require_datacenter=True)
        candidates = selector.candidates(small_dataset, "SE")
        for code in candidates:
            assert code == "SE" or small_dataset.region(code).has_datacenter

    def test_invalid_scope(self):
        with pytest.raises(ConfigurationError):
            CandidateSelector(scope="continent")

    def test_latency_parameters_must_come_together(self):
        with pytest.raises(ConfigurationError):
            CandidateSelector(latency_slo_ms=50.0)


class TestOneMigrationPolicy:
    def test_migrates_to_greenest_region(self, small_dataset):
        job = Job.batch(length_hours=24)
        result = OneMigrationPolicy().schedule(job, small_dataset, "IN-MH", 0)
        assert result.regions_used() == (small_dataset.greenest_region(),)
        assert result.reduction_g > 0
        ScheduleResult.validate_covers_job(result)

    def test_non_migratable_job_stays_home(self, small_dataset):
        job = Job.batch(length_hours=24).as_non_migratable()
        result = OneMigrationPolicy().schedule(job, small_dataset, "IN-MH", 0)
        assert result.regions_used() == ("IN-MH",)
        assert result.reduction_g == pytest.approx(0.0)

    def test_greenest_origin_gains_little(self, small_dataset):
        job = Job.batch(length_hours=24)
        origin = small_dataset.greenest_region()
        result = OneMigrationPolicy().schedule(job, small_dataset, origin, 0)
        assert abs(result.reduction_g) < 0.05 * result.baseline_emissions_g + 1e-9

    def test_group_scope_respects_borders(self, small_dataset):
        job = Job.batch(length_hours=24)
        policy = OneMigrationPolicy(CandidateSelector(scope="group"))
        result = policy.schedule(job, small_dataset, "IN-MH", 0)
        destination = result.regions_used()[0]
        assert small_dataset.region(destination).group == GeographicGroup.ASIA

    def test_interactive_job(self, small_dataset):
        job = Job.interactive()
        result = OneMigrationPolicy().schedule(job, small_dataset, "IN-MH", 100)
        assert result.emissions_g < result.baseline_emissions_g

    def test_invalid_arrival_hour(self, small_dataset):
        job = Job.batch(length_hours=24)
        with pytest.raises(ConfigurationError):
            OneMigrationPolicy().schedule(job, small_dataset, "SE", 9999)


class TestInfiniteMigrationPolicy:
    def test_beats_or_matches_one_migration(self, small_dataset):
        job = Job.batch(length_hours=48)
        for origin in ("IN-MH", "DE", "US-CA"):
            one = OneMigrationPolicy().schedule(job, small_dataset, origin, 1000)
            infinite = InfiniteMigrationPolicy().schedule(job, small_dataset, origin, 1000)
            assert infinite.emissions_g <= one.emissions_g + 1e-6

    def test_emissions_equal_hourly_minimum(self, small_dataset):
        job = Job.batch(length_hours=24)
        result = InfiniteMigrationPolicy().schedule(job, small_dataset, "DE", 0)
        matrix = small_dataset.intensity_matrix()
        expected = matrix[:, :24].min(axis=0).sum()
        assert result.emissions_g == pytest.approx(expected)

    def test_slices_cover_job(self, small_dataset):
        job = Job.batch(length_hours=24)
        result = InfiniteMigrationPolicy().schedule(job, small_dataset, "DE", 0)
        ScheduleResult.validate_covers_job(result)

    def test_non_migratable_job_stays_home(self, small_dataset):
        job = Job.batch(length_hours=12).as_non_migratable()
        result = InfiniteMigrationPolicy().schedule(job, small_dataset, "PL", 0)
        assert result.regions_used() == ("PL",)

    def test_interactive_job_routes_to_cleanest_now(self, small_dataset):
        job = Job.interactive()
        result = InfiniteMigrationPolicy().schedule(job, small_dataset, "PL", 5000)
        matrix = small_dataset.intensity_matrix()
        assert result.emissions_g == pytest.approx(matrix[:, 5000].min() * 0.01)

    def test_slice_starts_wrap_near_year_end(self, small_dataset):
        """Regression: hourly slices past hour 8759 must wrap to the start of
        the year instead of emitting out-of-trace start hours."""
        job = Job.batch(length_hours=24)
        result = InfiniteMigrationPolicy().schedule(job, small_dataset, "DE", 8750)
        trace_hours = len(small_dataset.series("DE"))
        starts = [piece.start_hour for piece in result.slices]
        assert all(0 <= start < trace_hours for start in starts)
        # The wrapped hours keep the hourly-minimum emissions.
        matrix = small_dataset.intensity_matrix()
        hours = (8750 + np.arange(24)) % trace_hours
        assert result.emissions_g == pytest.approx(matrix[:, hours].min(axis=0).sum())


class TestSpatialSweep:
    def test_matches_policy_at_sample_arrivals(self, small_dataset):
        selector = CandidateSelector()
        candidates = selector.candidates(small_dataset, "IN-MH")
        sweep = SpatialSweep(small_dataset, "IN-MH", candidates, 24)
        one = sweep.one_migration_sums()
        infinite = sweep.infinite_migration_sums()
        baseline = sweep.baseline_sums()
        job = Job.batch(length_hours=24)
        for arrival in (0, 1000, 8759):
            one_policy = OneMigrationPolicy().schedule(job, small_dataset, "IN-MH", arrival)
            inf_policy = InfiniteMigrationPolicy().schedule(job, small_dataset, "IN-MH", arrival)
            assert baseline[arrival] == pytest.approx(one_policy.baseline_emissions_g)
            assert one[arrival] == pytest.approx(one_policy.emissions_g)
            assert infinite[arrival] == pytest.approx(inf_policy.emissions_g, rel=1e-6)

    def test_infinite_never_exceeds_one_migration(self, small_dataset):
        candidates = small_dataset.codes()
        sweep = SpatialSweep(small_dataset, "DE", candidates, 24)
        assert np.all(sweep.infinite_migration_sums() <= sweep.one_migration_sums() + 1e-9)

    def test_mean_reductions_keys(self, small_dataset):
        sweep = SpatialSweep(small_dataset, "DE", small_dataset.codes(), 24)
        assert set(sweep.mean_reductions()) == {
            "baseline_mean",
            "one_migration_reduction_mean",
            "infinite_migration_reduction_mean",
        }

    def test_invalid_parameters(self, small_dataset):
        with pytest.raises(ConfigurationError):
            SpatialSweep(small_dataset, "DE", (), 24)
        with pytest.raises(ConfigurationError):
            SpatialSweep(small_dataset, "DE", small_dataset.codes(), 0)
