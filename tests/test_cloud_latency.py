"""Unit tests for the latency model."""

import numpy as np
import pytest

from repro.cloud.latency import LatencyModel
from repro.exceptions import ConfigurationError


class TestLatencyModel:
    def test_self_latency_is_base_rtt(self, small_catalog):
        model = LatencyModel()
        region = small_catalog.get("SE")
        assert model.rtt_ms(region, region) == model.base_rtt_ms

    def test_symmetry(self, small_catalog):
        model = LatencyModel()
        a = small_catalog.get("SE")
        b = small_catalog.get("US-CA")
        assert model.rtt_ms(a, b) == pytest.approx(model.rtt_ms(b, a))

    def test_nearby_regions_have_lower_rtt(self, full_catalog):
        model = LatencyModel()
        germany = full_catalog.get("DE")
        netherlands = full_catalog.get("NL")
        australia = full_catalog.get("AU-NSW")
        assert model.rtt_ms(germany, netherlands) < model.rtt_ms(germany, australia)

    def test_transatlantic_rtt_plausible(self, full_catalog):
        model = LatencyModel()
        virginia = full_catalog.get("US-VA")
        britain = full_catalog.get("GB")
        rtt = model.rtt_ms(virginia, britain)
        assert 60 <= rtt <= 160

    def test_matrix_properties(self, small_catalog):
        model = LatencyModel()
        matrix = model.matrix(small_catalog)
        assert matrix.shape == (len(small_catalog), len(small_catalog))
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == model.base_rtt_ms)

    def test_rtt_map_covers_catalog(self, small_catalog):
        model = LatencyModel()
        rtts = model.rtt_map(small_catalog, "SE")
        assert set(rtts) == set(small_catalog.codes())

    def test_reachable_within_includes_origin(self, small_catalog):
        model = LatencyModel()
        reachable = model.reachable_within(small_catalog, "SE", 0.0)
        assert reachable == ("SE",)

    def test_reachable_grows_with_slo(self, small_catalog):
        model = LatencyModel()
        near = model.reachable_within(small_catalog, "DE", 40.0)
        far = model.reachable_within(small_catalog, "DE", 300.0)
        assert set(near) <= set(far)
        assert len(far) == len(small_catalog)

    def test_max_rtt_bounds_reachability(self, small_catalog):
        model = LatencyModel()
        slo = model.max_rtt_ms(small_catalog)
        assert len(model.reachable_within(small_catalog, "SE", slo)) == len(small_catalog)

    def test_negative_slo_rejected(self, small_catalog):
        with pytest.raises(ConfigurationError):
            LatencyModel().reachable_within(small_catalog, "SE", -1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(ms_per_km=0)
        with pytest.raises(ConfigurationError):
            LatencyModel(base_rtt_ms=-1)
