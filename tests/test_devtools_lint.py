"""Fixture-driven tests for the reprolint rule battery.

Every rule gets at least one *bad* snippet proving it fires and one *good*
snippet proving it stays quiet; on top sit the suppression-machinery tests,
the CLI contract, and the tier-1 self-test asserting the repository itself
is clean under all rules.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.devtools.core import (
    META_MISSING_REASON,
    META_UNKNOWN_RULE,
    FileContext,
    infer_layer,
    infer_module,
    lint_file,
    parse_suppressions,
)
from repro.devtools.lint import main as lint_main
from repro.devtools.rules import RULE_CLASSES, all_rules, rule_ids

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def lint_snippet(
    source: str,
    layer: str = "src",
    module: str = "repro.example",
    path: str = "src/repro/example.py",
):
    """Lint an in-memory snippet as if it lived at ``path``."""
    ctx = FileContext.from_source(
        pathlib.Path(path), textwrap.dedent(source), layer=layer, module=module
    )
    return lint_file(ctx, all_rules())


def found_rules(source: str, **kwargs) -> set[str]:
    return {finding.rule_id for finding in lint_snippet(source, **kwargs)}


class TestRngGlobalStateRule:
    def test_import_random_fires(self):
        assert "rng-global-state" in found_rules("import random\n")

    def test_from_random_import_fires(self):
        assert "rng-global-state" in found_rules("from random import choice\n")

    def test_fires_in_every_layer(self):
        assert "rng-global-state" in found_rules(
            "import random\n", layer="tests", module=""
        )

    def test_seeded_numpy_generator_is_clean(self):
        assert found_rules(
            "import numpy as np\nrng = np.random.default_rng(42)\n"
        ) == set()


class TestUnseededDefaultRngRule:
    def test_argless_call_fires(self):
        findings = lint_snippet(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert any(f.rule_id == "rng-unseeded" for f in findings)
        assert any(f.line == 2 for f in findings)

    def test_bare_name_call_fires(self):
        source = "from numpy.random import default_rng\nrng = default_rng()\n"
        assert "rng-unseeded" in found_rules(source)

    def test_seeded_call_is_clean(self):
        assert "rng-unseeded" not in found_rules(
            "import numpy as np\nrng = np.random.default_rng(7)\n"
        )

    def test_seed_keyword_is_clean(self):
        assert "rng-unseeded" not in found_rules(
            "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
        )


class TestLegacyNumpyRandomRule:
    @pytest.mark.parametrize("call", ["np.random.rand(3)", "np.random.seed(0)",
                                      "np.random.normal(0.0, 1.0)"])
    def test_legacy_calls_fire(self, call):
        assert "rng-legacy-numpy" in found_rules(f"import numpy as np\nx = {call}\n")

    def test_generator_annotation_is_clean(self):
        source = (
            "import numpy as np\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return float(rng.random())\n"
        )
        assert "rng-legacy-numpy" not in found_rules(source)

    def test_only_applies_to_src(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert "rng-legacy-numpy" not in found_rules(
            source, layer="benchmarks", module=""
        )


class TestWallClockRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nstamp = time.time()\n",
            "import time\nstamp = time.perf_counter()\n",
            "from time import perf_counter\nstamp = perf_counter()\n",
            "from datetime import datetime\nstamp = datetime.now()\n",
            "import datetime\nstamp = datetime.datetime.now()\n",
            "from datetime import date\nstamp = date.today()\n",
        ],
    )
    def test_wall_clock_reads_fire(self, snippet):
        assert "wallclock" in found_rules(snippet)

    def test_reporting_module_is_exempt(self):
        source = "import time\nstamp = time.time()\n"
        assert "wallclock" not in found_rules(
            source, module="repro.reporting.bench", path="src/repro/reporting/bench.py"
        )

    def test_examples_are_exempt(self):
        source = "import time\nstamp = time.time()\n"
        assert "wallclock" not in found_rules(
            source, layer="examples", module="", path="examples/demo.py"
        )

    def test_unrelated_now_attribute_is_clean(self):
        # A .now() on some arbitrary object is not a datetime read.
        source = "def f(clock):\n    return clock.now()\n"
        assert "wallclock" not in found_rules(source)


class TestCyclicWrapRule:
    def test_raw_start_hour_fires(self):
        source = """
        def schedule(arrival, trace):
            return ExecutionSlice(
                region="SE",
                start_hour=arrival + 3,
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        findings = lint_snippet(source)
        assert any(f.rule_id == "cyclic-wrap" for f in findings)

    def test_inline_modulo_is_clean(self):
        source = """
        def schedule(arrival, trace):
            return ExecutionSlice(
                region="SE",
                start_hour=(arrival + 3) % len(trace),
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        assert "cyclic-wrap" not in found_rules(source)

    def test_wrap_helper_is_clean(self):
        source = """
        from repro.timeseries.windows import wrap_hour

        def schedule(arrival, trace):
            return ExecutionSlice(
                region="SE",
                start_hour=wrap_hour(arrival + 3, len(trace)),
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        assert "cyclic-wrap" not in found_rules(source)

    def test_variable_assigned_with_wrap_is_clean(self):
        source = """
        def schedule(arrival, best, trace):
            if best is None:
                start = arrival
            else:
                start = (arrival + best) % len(trace)
            return ExecutionSlice(
                region="SE",
                start_hour=start,
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        assert "cyclic-wrap" not in found_rules(source)

    def test_variable_never_wrapped_fires(self):
        source = """
        def schedule(arrival, best, trace):
            start = arrival + best
            return ExecutionSlice(
                region="SE",
                start_hour=start,
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        assert "cyclic-wrap" in found_rules(source)

    def test_positional_start_hour_is_checked(self):
        source = """
        def schedule(arrival):
            return ExecutionSlice("SE", arrival + 3, 1.0, 0.0)
        """
        assert "cyclic-wrap" in found_rules(source)

    def test_only_applies_to_src(self):
        source = "piece = ExecutionSlice('SE', 5, 1.0, 0.0)\n"
        assert "cyclic-wrap" not in found_rules(source, layer="tests", module="")


class TestWorkerPurityRule:
    def test_lambda_fires(self):
        source = """
        def run(codes, payloads):
            return parallel_map_regions(lambda c, p: p, codes, payloads)
        """
        assert "worker-purity" in found_rules(source)

    def test_nested_function_fires(self):
        source = """
        def run(codes, payloads):
            def shard(code, payload):
                return payload
            return parallel_map_regions(shard, codes, payloads)
        """
        assert "worker-purity" in found_rules(source)

    def test_bound_method_fires(self):
        source = """
        class Runner:
            def shard(self, code, payload):
                return payload

            def run(self, codes, payloads):
                return parallel_map_regions(self.shard, codes, payloads)
        """
        assert "worker-purity" in found_rules(source)

    def test_partial_of_lambda_fires(self):
        source = """
        from functools import partial

        def run(codes, payloads):
            worker = partial(lambda c, p, k: p, k=2)
            return parallel_map_regions(worker, codes, payloads)
        """
        assert "worker-purity" in found_rules(source)

    def test_module_level_function_is_clean(self):
        source = """
        def _shard(code, payload):
            return payload

        def run(codes, payloads):
            return parallel_map_regions(_shard, codes, payloads)
        """
        assert "worker-purity" not in found_rules(source)

    def test_partial_of_module_level_is_clean(self):
        source = """
        from functools import partial

        def _shard(code, payload, scale):
            return payload * scale

        def run(codes, payloads):
            worker = partial(_shard, scale=2.0)
            return parallel_map_regions(worker, codes, payloads)
        """
        assert "worker-purity" not in found_rules(source)

    def test_fires_in_tests_layer_too(self):
        source = """
        def run(codes, payloads):
            return parallel_map_regions(lambda c, p: p, codes, payloads)
        """
        assert "worker-purity" in found_rules(source, layer="tests", module="")


class TestFloatEqualityRule:
    def test_float_literal_fires(self):
        assert "float-equality" in found_rules("ok = value == 1.5\n")

    def test_float_conversion_fires(self):
        assert "float-equality" in found_rules('ok = x == float("inf")\n')

    def test_float_named_attribute_fires(self):
        assert "float-equality" in found_rules(
            "ok = result.emissions_g == expected\n"
        )

    def test_float_named_name_fires(self):
        assert "float-equality" in found_rules(
            "ok = migratable_fraction != other\n"
        )

    def test_int_comparison_is_clean(self):
        assert "float-equality" not in found_rules("ok = count == 3\n")

    def test_ordering_comparison_is_clean(self):
        assert "float-equality" not in found_rules("ok = emissions_g <= 1.5\n")

    def test_only_applies_to_src(self):
        assert "float-equality" not in found_rules(
            "assert emissions_g == 1.5\n", layer="tests", module=""
        )


class TestSeedProvenanceRule:
    def test_parameter_seed_is_clean(self):
        assert "rng-seed-provenance" not in found_rules(
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """
        )

    def test_config_attribute_seed_is_clean(self):
        assert "rng-seed-provenance" not in found_rules(
            """
            import numpy as np

            def make(config):
                return np.random.default_rng(config.seed)
            """
        )

    def test_arithmetic_and_all_caps_salt_are_clean(self):
        assert "rng-seed-provenance" not in found_rules(
            """
            import numpy as np

            SALT = 17

            def make(seed, index):
                return np.random.default_rng((seed + SALT, index))
            """
        )

    def test_local_helper_return_is_traced(self):
        assert "rng-seed-provenance" not in found_rules(
            """
            import numpy as np

            def _derive(seed):
                return seed * 3 + 1

            def make(seed):
                return np.random.default_rng(_derive(seed))
            """
        )

    def test_loop_variable_over_range_is_clean(self):
        assert "rng-seed-provenance" not in found_rules(
            """
            import numpy as np

            def sweep():
                for seed in range(10):
                    np.random.default_rng(seed)
            """
        )

    def test_environment_seed_two_hops_away_fires(self):
        """The semantic bug class: the seed exists but is ambient."""
        assert "rng-seed-provenance" in found_rules(
            """
            import os
            import numpy as np

            def make():
                raw = os.environ.get("SEED", "0")
                seed = int(raw)
                return np.random.default_rng(seed)
            """
        )

    def test_none_seed_fires(self):
        assert "rng-seed-provenance" in found_rules(
            "import numpy as np\nrng = np.random.default_rng(None)\n"
        )

    def test_float_literal_seed_fires(self):
        assert "rng-seed-provenance" in found_rules(
            "import numpy as np\nrng = np.random.default_rng(1.5)\n"
        )

    def test_unresolvable_callee_fires(self):
        assert "rng-seed-provenance" in found_rules(
            """
            import numpy as np

            def make():
                return np.random.default_rng(ambient_seed())
            """
        )

    def test_conditional_reassignment_must_prove_both_branches(self):
        assert "rng-seed-provenance" in found_rules(
            """
            import numpy as np

            def make(flag, seed):
                value = seed
                if flag:
                    value = ambient()
                return np.random.default_rng(value)
            """
        )

    def test_seed_sequence_entropy_is_checked(self):
        assert "rng-seed-provenance" in found_rules(
            "import numpy as np\nss = np.random.SeedSequence(entropy=ambient())\n"
        )

    def test_suppression_with_reason_applies(self):
        assert "rng-seed-provenance" not in found_rules(
            "import numpy as np\n"
            "rng = np.random.default_rng(None)"
            "  # repro: allow[rng-seed-provenance] fixture wants OS entropy\n"
        )


class TestFrozenArrayMutationRule:
    def test_subscript_store_on_field_fires(self):
        assert "frozen-array-mutation" in found_rules(
            "def clamp(arrays):\n    arrays.lengths[0] = 1\n"
        )

    def test_subscript_store_through_alias_fires(self):
        assert "frozen-array-mutation" in found_rules(
            """
            def clamp(outcome):
                emissions = outcome.emissions_g
                emissions[2] = 0.0
            """
        )

    def test_mutating_method_through_alias_fires(self):
        assert "frozen-array-mutation" in found_rules(
            """
            def reorder(outcome):
                hours = outcome.start_hours
                hours.sort()
            """
        )

    def test_augmented_assignment_on_field_fires(self):
        assert "frozen-array-mutation" in found_rules(
            "def scale(arrays):\n    arrays.powers += 1.0\n"
        )

    def test_out_kwarg_fires(self):
        assert "frozen-array-mutation" in found_rules(
            """
            import numpy as np

            def accumulate(arrays, delta):
                np.add(arrays.powers, delta, out=arrays.powers)
            """
        )

    def test_setflags_write_true_fires(self):
        assert "frozen-array-mutation" in found_rules(
            "def thaw(outcome):\n    outcome.start_hours.setflags(write=True)\n"
        )

    def test_copy_then_mutate_is_clean(self):
        assert "frozen-array-mutation" not in found_rules(
            """
            def fixed(arrays):
                lengths = arrays.lengths.copy()
                lengths[0] = 1
                lengths.sort()
                return lengths
            """
        )

    def test_unprotected_attribute_is_clean(self):
        assert "frozen-array-mutation" not in found_rules(
            "def push(state):\n    state.queue[0] = 1\n    state.scratch.sort()\n"
        )

    def test_fires_in_tests_layer_too(self):
        assert "frozen-array-mutation" in found_rules(
            "def test_x(arrays):\n    arrays.deadlines[0] = 9\n",
            layer="tests",
            module="",
            path="tests/test_example.py",
        )


class TestDtypeContractRule:
    def in_cloud(self, source: str) -> set[str]:
        return found_rules(
            source,
            module="repro.cloud.example",
            path="src/repro/cloud/example.py",
        )

    def test_inferring_constructor_without_dtype_fires(self):
        assert "dtype-contract" in self.in_cloud(
            "import numpy as np\narrivals = np.asarray(raw)\n"
        )

    def test_platform_width_int_fires(self):
        assert "dtype-contract" in self.in_cloud(
            "import numpy as np\nlengths = np.asarray(raw, dtype=int)\n"
        )

    def test_wrong_dtype_fires(self):
        assert "dtype-contract" in self.in_cloud(
            "import numpy as np\nemissions_g = np.zeros(4, dtype=np.float32)\n"
        )

    def test_float_default_for_int_contract_fires(self):
        assert "dtype-contract" in self.in_cloud(
            "import numpy as np\nsuspension_counts = np.zeros(4)\n"
        )

    def test_keyword_binding_fires(self):
        assert "dtype-contract" in self.in_cloud(
            "import numpy as np\nw = WorkloadArrays(arrivals=np.asarray(raw))\n"
        )

    def test_object_setattr_binding_fires(self):
        assert "dtype-contract" in self.in_cloud(
            """
            import numpy as np

            class Holder:
                def __init__(self, raw):
                    object.__setattr__(self, "arrivals", np.array(raw))
            """
        )

    def test_contracted_dtype_is_clean(self):
        assert "dtype-contract" not in self.in_cloud(
            """
            import numpy as np
            arrivals = np.asarray(raw, dtype=np.int64)
            powers = np.asarray(raw, dtype=float)
            emissions_g = np.zeros(4)
            interruptible = np.asarray(raw, dtype=bool)
            """
        )

    def test_uncontracted_name_is_clean(self):
        assert "dtype-contract" not in self.in_cloud(
            "import numpy as np\nscratch = np.asarray(raw)\n"
        )

    def test_out_of_scope_module_is_clean(self):
        assert "dtype-contract" not in found_rules(
            "import numpy as np\narrivals = np.asarray(raw)\n",
            module="repro.grid.example",
            path="src/repro/grid/example.py",
        )

    def test_ingest_modules_are_in_scope(self):
        """The real-data plane mints contracted ``intensities`` arrays; the
        rule must police repro.grid.ingest.* like the flat-array engines."""
        assert "dtype-contract" in found_rules(
            "import numpy as np\nintensities = np.asarray(raw)\n",
            module="repro.grid.ingest.example",
            path="src/repro/grid/ingest/example.py",
        )
        assert "dtype-contract" not in found_rules(
            "import numpy as np\nintensities = np.asarray(raw, dtype=np.float64)\n",
            module="repro.grid.ingest.example",
            path="src/repro/grid/ingest/example.py",
        )

    def test_astype_to_wrong_dtype_fires(self):
        assert "dtype-contract" in self.in_cloud(
            "start_delays = chunk.astype(np.int32)\n"
        )


class TestSuppressions:
    SOURCE = "import random  # repro: allow[rng-global-state] fixture exercising the stdlib API\n"

    def test_allow_with_reason_suppresses(self):
        assert found_rules(self.SOURCE) == set()

    def test_allow_without_reason_is_reported(self):
        source = "import random  # repro: allow[rng-global-state]\n"
        assert found_rules(source) == {META_MISSING_REASON}

    def test_allow_unknown_rule_is_reported(self):
        source = "import random  # repro: allow[no-such-rule] because\n"
        rules = found_rules(source)
        assert META_UNKNOWN_RULE in rules
        assert "rng-global-state" in rules  # the real finding survives

    def test_standalone_comment_covers_next_line(self):
        source = (
            "# repro: allow[rng-global-state] fixture for the comment-above idiom\n"
            "import random\n"
        )
        assert found_rules(source) == set()

    def test_multiple_ids_in_one_comment(self):
        source = (
            "import random  # repro: allow[rng-global-state,float-equality] fixture\n"
        )
        assert found_rules(source) == set()

    def test_suppression_only_covers_its_line(self):
        source = (
            "import random  # repro: allow[rng-global-state] fixture\n"
            "import random\n"
        )
        assert "rng-global-state" in found_rules(source)

    def test_allow_inside_string_literal_is_ignored(self):
        source = 's = "# repro: allow[rng-global-state] not a comment"\nimport random\n'
        assert "rng-global-state" in found_rules(source)

    def test_parse_suppressions_shape(self):
        supps = parse_suppressions(self.SOURCE)
        assert len(supps) == 1
        assert supps[0].rule_ids == ("rng-global-state",)
        assert supps[0].reason.startswith("fixture")
        assert not supps[0].standalone


class TestLayerAndModuleInference:
    def test_infer_layer(self):
        assert infer_layer(pathlib.Path("src/repro/cli.py")) == "src"
        assert infer_layer(pathlib.Path("tests/test_cli.py")) == "tests"
        assert infer_layer(pathlib.Path("benchmarks/test_bench.py")) == "benchmarks"
        assert infer_layer(pathlib.Path("examples/quickstart.py")) == "examples"
        assert infer_layer(pathlib.Path("setup.py")) is None

    def test_infer_module(self):
        assert infer_module(pathlib.Path("src/repro/cloud/fleet.py")) == "repro.cloud.fleet"
        assert infer_module(pathlib.Path("src/repro/__init__.py")) == "repro"
        assert infer_module(pathlib.Path("tests/test_cli.py")) is None


class TestRegistry:
    def test_rule_ids_are_unique_and_kebab_case(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids)) == len(RULE_CLASSES)
        for rule_id in ids:
            assert rule_id == rule_id.lower()
            assert " " not in rule_id

    def test_every_rule_has_description(self):
        for rule in all_rules():
            assert rule.description


class TestLintCli:
    def write(self, tmp_path, name, source):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self.write(tmp_path, "src/repro/good.py", "import numpy as np\nrng = np.random.default_rng(1)\n")
        assert lint_main([str(tmp_path / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_tree_exits_one(self, tmp_path, capsys):
        self.write(tmp_path, "src/repro/bad.py", "import random\n")
        assert lint_main([str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "rng-global-state" in out
        assert "1 finding(s)" in out

    def test_json_format(self, tmp_path, capsys):
        self.write(tmp_path, "src/repro/bad.py", "import random\n")
        assert lint_main(["--format", "json", str(tmp_path / "src")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "rng-global-state"
        assert payload["findings"][0]["line"] == 1

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        self.write(tmp_path, "src/repro/bad.py", "import random\n")
        assert lint_main(["--select", "cyclic-wrap", str(tmp_path / "src")]) == 0
        capsys.readouterr()

    def test_select_unknown_rule_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main(["--select", "nope", str(tmp_path)])

    def test_missing_path_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main([str(tmp_path / "does-not-exist")])

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_github_format_emits_error_annotations(self, tmp_path, capsys):
        self.write(tmp_path, "src/repro/bad.py", "import random\n")
        assert lint_main(["--format", "github", str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "line=1" in out
        assert "title=reprolint[rng-global-state]" in out

    def test_jobs_matches_serial_findings(self, tmp_path):
        from repro.devtools.lint import run_lint

        self.write(tmp_path, "src/repro/bad.py", "import random\n")
        self.write(tmp_path, "src/repro/worse.py", "import time\nnow = time.time()\n")
        self.write(
            tmp_path,
            "src/repro/good.py",
            "import numpy as np\nrng = np.random.default_rng(1)\n",
        )
        serial, checked_serial = run_lint([str(tmp_path / "src")])
        pooled, checked_pooled = run_lint([str(tmp_path / "src")], jobs=2)
        assert checked_serial == checked_pooled == 3
        assert serial == pooled  # same findings, same deterministic order
        assert serial  # the fixture tree is actually dirty

    def test_jobs_zero_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main(["--jobs", "0", str(tmp_path)])


class TestRepositoryIsClean:
    """Tier-1 self-test: the repo must pass its own static-analysis gate."""

    def test_repo_clean_under_all_rules(self):
        from repro.devtools.lint import run_lint

        paths = [str(REPO_ROOT / part) for part in ("src", "tests", "benchmarks", "examples")]
        findings, checked = run_lint(paths)
        formatted = "\n".join(finding.format() for finding in findings)
        assert not findings, f"reprolint findings in the repository:\n{formatted}"
        assert checked > 100  # the whole tree was actually walked
