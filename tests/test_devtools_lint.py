"""Fixture-driven tests for the reprolint rule battery.

Every rule gets at least one *bad* snippet proving it fires and one *good*
snippet proving it stays quiet; on top sit the suppression-machinery tests,
the CLI contract, and the tier-1 self-test asserting the repository itself
is clean under all rules.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.devtools.core import (
    META_MISSING_REASON,
    META_UNKNOWN_RULE,
    FileContext,
    infer_layer,
    infer_module,
    lint_file,
    parse_suppressions,
)
from repro.devtools.lint import main as lint_main
from repro.devtools.rules import RULE_CLASSES, all_rules, rule_ids

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def lint_snippet(
    source: str,
    layer: str = "src",
    module: str = "repro.example",
    path: str = "src/repro/example.py",
):
    """Lint an in-memory snippet as if it lived at ``path``."""
    ctx = FileContext.from_source(
        pathlib.Path(path), textwrap.dedent(source), layer=layer, module=module
    )
    return lint_file(ctx, all_rules())


def found_rules(source: str, **kwargs) -> set[str]:
    return {finding.rule_id for finding in lint_snippet(source, **kwargs)}


class TestRngGlobalStateRule:
    def test_import_random_fires(self):
        assert "rng-global-state" in found_rules("import random\n")

    def test_from_random_import_fires(self):
        assert "rng-global-state" in found_rules("from random import choice\n")

    def test_fires_in_every_layer(self):
        assert "rng-global-state" in found_rules(
            "import random\n", layer="tests", module=""
        )

    def test_seeded_numpy_generator_is_clean(self):
        assert found_rules(
            "import numpy as np\nrng = np.random.default_rng(42)\n"
        ) == set()


class TestUnseededDefaultRngRule:
    def test_argless_call_fires(self):
        findings = lint_snippet(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert any(f.rule_id == "rng-unseeded" for f in findings)
        assert any(f.line == 2 for f in findings)

    def test_bare_name_call_fires(self):
        source = "from numpy.random import default_rng\nrng = default_rng()\n"
        assert "rng-unseeded" in found_rules(source)

    def test_seeded_call_is_clean(self):
        assert "rng-unseeded" not in found_rules(
            "import numpy as np\nrng = np.random.default_rng(7)\n"
        )

    def test_seed_keyword_is_clean(self):
        assert "rng-unseeded" not in found_rules(
            "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
        )


class TestLegacyNumpyRandomRule:
    @pytest.mark.parametrize("call", ["np.random.rand(3)", "np.random.seed(0)",
                                      "np.random.normal(0.0, 1.0)"])
    def test_legacy_calls_fire(self, call):
        assert "rng-legacy-numpy" in found_rules(f"import numpy as np\nx = {call}\n")

    def test_generator_annotation_is_clean(self):
        source = (
            "import numpy as np\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return float(rng.random())\n"
        )
        assert "rng-legacy-numpy" not in found_rules(source)

    def test_only_applies_to_src(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert "rng-legacy-numpy" not in found_rules(
            source, layer="benchmarks", module=""
        )


class TestWallClockRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nstamp = time.time()\n",
            "import time\nstamp = time.perf_counter()\n",
            "from time import perf_counter\nstamp = perf_counter()\n",
            "from datetime import datetime\nstamp = datetime.now()\n",
            "import datetime\nstamp = datetime.datetime.now()\n",
            "from datetime import date\nstamp = date.today()\n",
        ],
    )
    def test_wall_clock_reads_fire(self, snippet):
        assert "wallclock" in found_rules(snippet)

    def test_reporting_module_is_exempt(self):
        source = "import time\nstamp = time.time()\n"
        assert "wallclock" not in found_rules(
            source, module="repro.reporting.bench", path="src/repro/reporting/bench.py"
        )

    def test_examples_are_exempt(self):
        source = "import time\nstamp = time.time()\n"
        assert "wallclock" not in found_rules(
            source, layer="examples", module="", path="examples/demo.py"
        )

    def test_unrelated_now_attribute_is_clean(self):
        # A .now() on some arbitrary object is not a datetime read.
        source = "def f(clock):\n    return clock.now()\n"
        assert "wallclock" not in found_rules(source)


class TestCyclicWrapRule:
    def test_raw_start_hour_fires(self):
        source = """
        def schedule(arrival, trace):
            return ExecutionSlice(
                region="SE",
                start_hour=arrival + 3,
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        findings = lint_snippet(source)
        assert any(f.rule_id == "cyclic-wrap" for f in findings)

    def test_inline_modulo_is_clean(self):
        source = """
        def schedule(arrival, trace):
            return ExecutionSlice(
                region="SE",
                start_hour=(arrival + 3) % len(trace),
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        assert "cyclic-wrap" not in found_rules(source)

    def test_wrap_helper_is_clean(self):
        source = """
        from repro.timeseries.windows import wrap_hour

        def schedule(arrival, trace):
            return ExecutionSlice(
                region="SE",
                start_hour=wrap_hour(arrival + 3, len(trace)),
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        assert "cyclic-wrap" not in found_rules(source)

    def test_variable_assigned_with_wrap_is_clean(self):
        source = """
        def schedule(arrival, best, trace):
            if best is None:
                start = arrival
            else:
                start = (arrival + best) % len(trace)
            return ExecutionSlice(
                region="SE",
                start_hour=start,
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        assert "cyclic-wrap" not in found_rules(source)

    def test_variable_never_wrapped_fires(self):
        source = """
        def schedule(arrival, best, trace):
            start = arrival + best
            return ExecutionSlice(
                region="SE",
                start_hour=start,
                duration_hours=1.0,
                emissions_g=0.0,
            )
        """
        assert "cyclic-wrap" in found_rules(source)

    def test_positional_start_hour_is_checked(self):
        source = """
        def schedule(arrival):
            return ExecutionSlice("SE", arrival + 3, 1.0, 0.0)
        """
        assert "cyclic-wrap" in found_rules(source)

    def test_only_applies_to_src(self):
        source = "piece = ExecutionSlice('SE', 5, 1.0, 0.0)\n"
        assert "cyclic-wrap" not in found_rules(source, layer="tests", module="")


class TestWorkerPurityRule:
    def test_lambda_fires(self):
        source = """
        def run(codes, payloads):
            return parallel_map_regions(lambda c, p: p, codes, payloads)
        """
        assert "worker-purity" in found_rules(source)

    def test_nested_function_fires(self):
        source = """
        def run(codes, payloads):
            def shard(code, payload):
                return payload
            return parallel_map_regions(shard, codes, payloads)
        """
        assert "worker-purity" in found_rules(source)

    def test_bound_method_fires(self):
        source = """
        class Runner:
            def shard(self, code, payload):
                return payload

            def run(self, codes, payloads):
                return parallel_map_regions(self.shard, codes, payloads)
        """
        assert "worker-purity" in found_rules(source)

    def test_partial_of_lambda_fires(self):
        source = """
        from functools import partial

        def run(codes, payloads):
            worker = partial(lambda c, p, k: p, k=2)
            return parallel_map_regions(worker, codes, payloads)
        """
        assert "worker-purity" in found_rules(source)

    def test_module_level_function_is_clean(self):
        source = """
        def _shard(code, payload):
            return payload

        def run(codes, payloads):
            return parallel_map_regions(_shard, codes, payloads)
        """
        assert "worker-purity" not in found_rules(source)

    def test_partial_of_module_level_is_clean(self):
        source = """
        from functools import partial

        def _shard(code, payload, scale):
            return payload * scale

        def run(codes, payloads):
            worker = partial(_shard, scale=2.0)
            return parallel_map_regions(worker, codes, payloads)
        """
        assert "worker-purity" not in found_rules(source)

    def test_fires_in_tests_layer_too(self):
        source = """
        def run(codes, payloads):
            return parallel_map_regions(lambda c, p: p, codes, payloads)
        """
        assert "worker-purity" in found_rules(source, layer="tests", module="")


class TestFloatEqualityRule:
    def test_float_literal_fires(self):
        assert "float-equality" in found_rules("ok = value == 1.5\n")

    def test_float_conversion_fires(self):
        assert "float-equality" in found_rules('ok = x == float("inf")\n')

    def test_float_named_attribute_fires(self):
        assert "float-equality" in found_rules(
            "ok = result.emissions_g == expected\n"
        )

    def test_float_named_name_fires(self):
        assert "float-equality" in found_rules(
            "ok = migratable_fraction != other\n"
        )

    def test_int_comparison_is_clean(self):
        assert "float-equality" not in found_rules("ok = count == 3\n")

    def test_ordering_comparison_is_clean(self):
        assert "float-equality" not in found_rules("ok = emissions_g <= 1.5\n")

    def test_only_applies_to_src(self):
        assert "float-equality" not in found_rules(
            "assert emissions_g == 1.5\n", layer="tests", module=""
        )


class TestSuppressions:
    SOURCE = "import random  # repro: allow[rng-global-state] fixture exercising the stdlib API\n"

    def test_allow_with_reason_suppresses(self):
        assert found_rules(self.SOURCE) == set()

    def test_allow_without_reason_is_reported(self):
        source = "import random  # repro: allow[rng-global-state]\n"
        assert found_rules(source) == {META_MISSING_REASON}

    def test_allow_unknown_rule_is_reported(self):
        source = "import random  # repro: allow[no-such-rule] because\n"
        rules = found_rules(source)
        assert META_UNKNOWN_RULE in rules
        assert "rng-global-state" in rules  # the real finding survives

    def test_standalone_comment_covers_next_line(self):
        source = (
            "# repro: allow[rng-global-state] fixture for the comment-above idiom\n"
            "import random\n"
        )
        assert found_rules(source) == set()

    def test_multiple_ids_in_one_comment(self):
        source = (
            "import random  # repro: allow[rng-global-state,float-equality] fixture\n"
        )
        assert found_rules(source) == set()

    def test_suppression_only_covers_its_line(self):
        source = (
            "import random  # repro: allow[rng-global-state] fixture\n"
            "import random\n"
        )
        assert "rng-global-state" in found_rules(source)

    def test_allow_inside_string_literal_is_ignored(self):
        source = 's = "# repro: allow[rng-global-state] not a comment"\nimport random\n'
        assert "rng-global-state" in found_rules(source)

    def test_parse_suppressions_shape(self):
        supps = parse_suppressions(self.SOURCE)
        assert len(supps) == 1
        assert supps[0].rule_ids == ("rng-global-state",)
        assert supps[0].reason.startswith("fixture")
        assert not supps[0].standalone


class TestLayerAndModuleInference:
    def test_infer_layer(self):
        assert infer_layer(pathlib.Path("src/repro/cli.py")) == "src"
        assert infer_layer(pathlib.Path("tests/test_cli.py")) == "tests"
        assert infer_layer(pathlib.Path("benchmarks/test_bench.py")) == "benchmarks"
        assert infer_layer(pathlib.Path("examples/quickstart.py")) == "examples"
        assert infer_layer(pathlib.Path("setup.py")) is None

    def test_infer_module(self):
        assert infer_module(pathlib.Path("src/repro/cloud/fleet.py")) == "repro.cloud.fleet"
        assert infer_module(pathlib.Path("src/repro/__init__.py")) == "repro"
        assert infer_module(pathlib.Path("tests/test_cli.py")) is None


class TestRegistry:
    def test_rule_ids_are_unique_and_kebab_case(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids)) == len(RULE_CLASSES)
        for rule_id in ids:
            assert rule_id == rule_id.lower()
            assert " " not in rule_id

    def test_every_rule_has_description(self):
        for rule in all_rules():
            assert rule.description


class TestLintCli:
    def write(self, tmp_path, name, source):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self.write(tmp_path, "src/repro/good.py", "import numpy as np\nrng = np.random.default_rng(1)\n")
        assert lint_main([str(tmp_path / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_tree_exits_one(self, tmp_path, capsys):
        self.write(tmp_path, "src/repro/bad.py", "import random\n")
        assert lint_main([str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "rng-global-state" in out
        assert "1 finding(s)" in out

    def test_json_format(self, tmp_path, capsys):
        self.write(tmp_path, "src/repro/bad.py", "import random\n")
        assert lint_main(["--format", "json", str(tmp_path / "src")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "rng-global-state"
        assert payload["findings"][0]["line"] == 1

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        self.write(tmp_path, "src/repro/bad.py", "import random\n")
        assert lint_main(["--select", "cyclic-wrap", str(tmp_path / "src")]) == 0
        capsys.readouterr()

    def test_select_unknown_rule_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main(["--select", "nope", str(tmp_path)])

    def test_missing_path_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            lint_main([str(tmp_path / "does-not-exist")])

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out


class TestRepositoryIsClean:
    """Tier-1 self-test: the repo must pass its own static-analysis gate."""

    def test_repo_clean_under_all_rules(self):
        from repro.devtools.lint import run_lint

        paths = [str(REPO_ROOT / part) for part in ("src", "tests", "benchmarks", "examples")]
        findings, checked = run_lint(paths)
        formatted = "\n".join(finding.format() for finding in findings)
        assert not findings, f"reprolint findings in the repository:\n{formatted}"
        assert checked > 100  # the whole tree was actually walked
