"""Tests for the on-disk ingest cache (`repro.grid.ingest.cache`).

The cache's contract: a cached load is bit-identical to a fresh parse,
editing the source file invalidates by content hash (never by mtime), and
a corrupted entry is silently re-parsed — plus the versioned-filename
layout that lets future format bumps orphan old entries.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.grid import default_catalog
from repro.grid.ingest import (
    CACHE_FORMAT_VERSION,
    ElectricityMapsCSVSource,
    IngestCache,
    content_hash,
)

FIXTURES = Path(__file__).parent / "data" / "electricitymaps"


@pytest.fixture()
def data_dir(tmp_path):
    """A private copy of the fixture directory (cache writes stay local)."""
    target = tmp_path / "em"
    shutil.copytree(
        FIXTURES, target, ignore=shutil.ignore_patterns("_ingest_cache")
    )
    return target


@pytest.fixture()
def region():
    return default_catalog().get("US-IA")


class TestIngestCacheRoundTrip:
    def test_parse_then_load_is_bit_identical(self, data_dir, region):
        source = ElectricityMapsCSVSource(data_dir)
        cache_dir = data_dir / ElectricityMapsCSVSource.CACHE_SUBDIR
        assert not cache_dir.exists()

        first = source.trace(region, 2022).values  # cold: parses and stores
        entries = list(cache_dir.glob("*.npz"))
        assert len(entries) == 1

        # A fresh source object must *load* (same digest, entry untouched)
        # and hand back the very same bits and dtype.
        second = ElectricityMapsCSVSource(data_dir).trace(region, 2022).values
        assert np.array_equal(first, second)
        assert first.dtype == second.dtype == np.float64
        assert list(cache_dir.glob("*.npz")) == entries

    def test_loaded_array_matches_a_cache_free_parse(self, data_dir, region):
        cached = ElectricityMapsCSVSource(data_dir)
        cached.trace(region, 2022)  # populate
        via_cache = cached.trace(region, 2022).values
        direct = (
            ElectricityMapsCSVSource(data_dir, use_cache=False)
            .trace(region, 2022)
            .values
        )
        assert np.array_equal(via_cache, direct)

    def test_entry_filename_carries_version_and_content_hash(
        self, data_dir, region
    ):
        source = ElectricityMapsCSVSource(data_dir)
        source.trace(region, 2022)
        digest = content_hash(data_dir / "US-IA_2022_hourly.csv")
        expected = f"US-IA_2022_{digest}.v{CACHE_FORMAT_VERSION}.npz"
        cache_dir = data_dir / ElectricityMapsCSVSource.CACHE_SUBDIR
        assert [p.name for p in cache_dir.glob("*.npz")] == [expected]

    def test_no_temporary_files_left_behind(self, data_dir, region):
        source = ElectricityMapsCSVSource(data_dir)
        source.trace(region, 2022)
        cache_dir = data_dir / ElectricityMapsCSVSource.CACHE_SUBDIR
        assert not list(cache_dir.glob("*.tmp"))

    def test_use_cache_false_writes_nothing(self, data_dir, region):
        source = ElectricityMapsCSVSource(data_dir, use_cache=False)
        source.trace(region, 2022)
        assert not (data_dir / ElectricityMapsCSVSource.CACHE_SUBDIR).exists()


class TestIngestCacheInvalidation:
    def test_editing_the_source_file_misses_and_prunes(self, data_dir, region):
        source = ElectricityMapsCSVSource(data_dir)
        before = source.trace(region, 2022).values.copy()
        path = data_dir / "US-IA_2022_hourly.csv"
        old_digest = content_hash(path)

        # Change one reading: the content hash — and so the cache key —
        # changes, the stale entry is pruned, and the new parse shows the
        # edit.
        lines = path.read_text(encoding="utf-8").splitlines()
        cells = lines[1].split(",")
        cells[5] = "999.0"  # the LCA intensity of the hour-0 row
        lines[1] = ",".join(cells)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        new_digest = content_hash(path)
        assert new_digest != old_digest

        after = ElectricityMapsCSVSource(data_dir).trace(region, 2022).values
        assert not np.array_equal(before, after)
        assert after[0] == pytest.approx(999.0)
        cache_dir = data_dir / ElectricityMapsCSVSource.CACHE_SUBDIR
        names = [p.name for p in cache_dir.glob("US-IA_2022_*.npz")]
        assert names == [f"US-IA_2022_{new_digest}.v{CACHE_FORMAT_VERSION}.npz"]

    def test_store_keeps_one_entry_per_zone_year(self, tmp_path):
        cache = IngestCache(tmp_path)
        values = np.arange(24, dtype=np.float64)
        cache.store("SE", 2022, "a" * 16, values)
        cache.store("SE", 2022, "b" * 16, values * 2.0)
        cache.store("SE", 2020, "c" * 16, values)  # other year: untouched
        names = sorted(p.name for p in tmp_path.glob("*.npz"))
        assert names == [
            f"SE_2020_{'c' * 16}.v{CACHE_FORMAT_VERSION}.npz",
            f"SE_2022_{'b' * 16}.v{CACHE_FORMAT_VERSION}.npz",
        ]


class TestIngestCacheCorruption:
    def test_corrupted_entry_is_deleted_and_reparsed(self, data_dir, region):
        source = ElectricityMapsCSVSource(data_dir)
        good = source.trace(region, 2022).values.copy()
        cache_dir = data_dir / ElectricityMapsCSVSource.CACHE_SUBDIR
        (entry,) = cache_dir.glob("*.npz")
        entry.write_bytes(b"not a zip archive")

        recovered = ElectricityMapsCSVSource(data_dir).trace(region, 2022).values
        assert np.array_equal(recovered, good)
        # The damaged entry was replaced by a fresh, loadable one.
        (entry_after,) = cache_dir.glob("*.npz")
        assert entry_after == entry
        loaded = IngestCache(cache_dir).load(
            "US-IA", 2022, content_hash(data_dir / "US-IA_2022_hourly.csv")
        )
        assert loaded is not None and np.array_equal(loaded, good)

    def test_load_returns_none_on_miss(self, tmp_path):
        cache = IngestCache(tmp_path)
        assert cache.load("SE", 2022, "0" * 16) is None

    def test_wrong_shape_entry_treated_as_corrupt(self, tmp_path):
        cache = IngestCache(tmp_path)
        path = cache.entry_path("SE", 2022, "0" * 16)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle, intensities=np.zeros((2, 2), dtype=np.float64)
            )
        assert cache.load("SE", 2022, "0" * 16) is None
        assert not path.exists()  # deleted so a re-parse can replace it

    def test_entry_missing_the_intensities_key(self, tmp_path):
        cache = IngestCache(tmp_path)
        path = cache.entry_path("SE", 2022, "0" * 16)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            np.savez_compressed(handle, other=np.zeros(3, dtype=np.float64))
        assert cache.load("SE", 2022, "0" * 16) is None
        assert not path.exists()
