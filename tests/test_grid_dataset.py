"""Unit tests for the CarbonDataset container."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.grid.dataset import CarbonDataset
from repro.grid.region import GeographicGroup
from repro.timeseries.series import HourlySeries


class TestAccess:
    def test_series_lookup(self, small_dataset):
        series = small_dataset.series("SE", 2022)
        assert len(series) == 8760
        assert series.name == "SE"

    def test_default_year_is_latest(self, small_dataset):
        assert np.array_equal(
            small_dataset.series("SE").values, small_dataset.series("SE", 2022).values
        )

    def test_unknown_region_raises(self, small_dataset):
        with pytest.raises(DataError):
            small_dataset.series("NOPE", 2022)

    def test_unknown_year_raises(self, small_dataset):
        with pytest.raises(DataError):
            small_dataset.series("SE", 1999)

    def test_len_and_codes(self, small_dataset):
        assert len(small_dataset) == 10
        assert "US-CA" in small_dataset.codes()

    def test_region_metadata(self, small_dataset):
        assert small_dataset.region("SE").group == GeographicGroup.EUROPE


class TestCachedKernels:
    def test_window_sums_match_direct_computation(self, small_dataset):
        from repro.timeseries.windows import cyclic_window_sums

        direct = cyclic_window_sums(small_dataset.series("DE").values, 24)
        assert np.allclose(small_dataset.window_sums("DE", 24), direct)

    def test_window_sums_memoised(self, small_dataset):
        first = small_dataset.window_sums("SE", 24)
        second = small_dataset.window_sums("SE", 24)
        assert first is second

    def test_window_sums_read_only(self, small_dataset):
        sums = small_dataset.window_sums("SE", 6)
        with pytest.raises(ValueError):
            sums[0] = 0.0

    def test_distinct_windows_cached_separately(self, small_dataset):
        assert not np.array_equal(
            small_dataset.window_sums("SE", 6), small_dataset.window_sums("SE", 12)
        )

    def test_trace_values_match_series(self, small_dataset):
        assert np.array_equal(
            small_dataset.trace_values("PL"), small_dataset.series("PL").values
        )

    def test_pickle_drops_cache_but_preserves_data(self, small_dataset):
        import pickle

        small_dataset.window_sums("SE", 24)
        clone = pickle.loads(pickle.dumps(small_dataset))
        assert not clone._window_sum_cache
        assert np.allclose(clone.window_sums("SE", 24), small_dataset.window_sums("SE", 24))

    def test_mean_intensity_memoised(self, small_dataset):
        first = small_dataset.mean_intensity("SE")
        assert small_dataset.mean_intensity("SE") == first
        assert ("SE", small_dataset.latest_year) in small_dataset._mean_cache


class TestAggregates:
    def test_annual_means_cover_all_regions(self, small_dataset):
        means = small_dataset.annual_means()
        assert set(means) == set(small_dataset.codes())

    def test_global_average_is_mean_of_means(self, small_dataset):
        means = small_dataset.annual_means()
        assert small_dataset.global_average() == pytest.approx(np.mean(list(means.values())))

    def test_group_average(self, small_dataset):
        europe = small_dataset.group_average(GeographicGroup.EUROPE)
        assert europe > 0

    def test_group_average_unknown_group_raises(self, small_dataset):
        with pytest.raises(DataError):
            small_dataset.group_average(GeographicGroup.AFRICA)

    def test_intensity_matrix_shape_and_order(self, small_dataset):
        matrix = small_dataset.intensity_matrix()
        assert matrix.shape == (10, 8760)
        codes = small_dataset.codes()
        assert np.array_equal(matrix[codes.index("SE")], small_dataset.series("SE").values)

    def test_greenest_and_dirtiest(self, small_dataset):
        means = small_dataset.annual_means()
        assert small_dataset.greenest_region() == min(means, key=means.get)
        assert small_dataset.dirtiest_region() == max(means, key=means.get)

    def test_rank_order_sorted(self, small_dataset):
        means = small_dataset.annual_means()
        order = small_dataset.rank_order()
        values = [means[c] for c in order]
        assert values == sorted(values)


class TestDerivation:
    def test_subset(self, small_dataset):
        subset = small_dataset.subset(["SE", "US-CA"])
        assert len(subset) == 2
        assert subset.codes() == ("SE", "US-CA")

    def test_for_group(self, small_dataset):
        europe = small_dataset.for_group(GeographicGroup.EUROPE)
        assert all(
            europe.region(code).group == GeographicGroup.EUROPE for code in europe.codes()
        )

    def test_with_traces_replaces(self, small_dataset):
        replacement = HourlySeries.constant(1.0, 8760, name="SE")
        modified = small_dataset.with_traces({("SE", 2022): replacement})
        assert modified.mean_intensity("SE") == pytest.approx(1.0)
        # The original dataset is untouched.
        assert small_dataset.mean_intensity("SE") > 5

    def test_validation_missing_trace(self, small_catalog):
        with pytest.raises(DataError):
            CarbonDataset(
                catalog=small_catalog,
                traces={("SE", 2022): HourlySeries.constant(1.0, 10)},
                years=(2022,),
            )

    def test_validation_unknown_region(self, small_dataset, small_catalog):
        traces = dict(small_dataset.traces)
        traces[("NOPE", 2022)] = HourlySeries.constant(1.0, 8760)
        with pytest.raises(DataError):
            CarbonDataset(catalog=small_catalog, traces=traces, years=(2022,))

    def test_requires_at_least_one_year(self, small_catalog):
        with pytest.raises(ConfigurationError):
            CarbonDataset(catalog=small_catalog, traces={}, years=())

    def test_from_traces_infers_years(self, small_catalog):
        traces = {
            (code, 2022): HourlySeries.constant(100.0, 8760, name=code)
            for code in small_catalog.codes()
        }
        dataset = CarbonDataset.from_traces(small_catalog, traces)
        assert dataset.years == (2022,)

    def test_from_traces_rejects_an_empty_mapping(self, small_catalog):
        """Regression: an empty mapping used to surface as a misleading
        'dataset must cover at least one year' ConfigurationError derived
        from the empty years tuple; it is a precise DataError now."""
        with pytest.raises(DataError, match="no traces supplied"):
            CarbonDataset.from_traces(small_catalog, {})

    def test_trend_dataset_years(self, trend_dataset):
        assert trend_dataset.years == (2020, 2022)
        assert trend_dataset.earliest_year == 2020
        assert trend_dataset.latest_year == 2022
        assert len(trend_dataset.series("SE", 2020)) == 8784
