"""Tests for the persisted benchmark wall-clock artifacts (BENCH_*.json)."""

import json

from benchmarks.conftest import write_bench_json


class TestWriteBenchJson:
    def test_writes_one_artifact_with_the_records(self, tmp_path):
        records = [
            {"test": "benchmarks/test_bench_fleet.py::test_bench", "seconds": 1.25,
             "outcome": "passed"},
            {"test": "benchmarks/test_bench_fig05_capacity.py::test_bench",
             "seconds": 0.5, "outcome": "passed"},
        ]
        path = write_bench_json(records, out_dir=tmp_path)
        assert path is not None
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        payload = json.loads(path.read_text())
        assert payload["benchmarks"] == records
        assert payload["total_seconds"] == 1.75
        assert payload["python"]
        assert "created_utc" in payload

    def test_no_records_writes_nothing(self, tmp_path):
        assert write_bench_json([], out_dir=tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_disabled_via_empty_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_JSON_DIR", "")
        records = [{"test": "t", "seconds": 0.1, "outcome": "passed"}]
        assert write_bench_json(records) is None

    def test_env_dir_is_used(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_JSON_DIR", str(tmp_path / "history"))
        records = [{"test": "t", "seconds": 0.1, "outcome": "passed"}]
        path = write_bench_json(records)
        assert path is not None
        assert path.parent == tmp_path / "history"
