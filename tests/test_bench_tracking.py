"""Tests for the persisted benchmark wall-clock artifacts (BENCH_*.json)
and the regression gate comparing the newest artifact against history."""

import json

import pytest

from benchmarks.conftest import write_bench_json
from repro.reporting.bench import (
    check_bench_regressions,
    load_bench_artifacts,
    main as bench_gate_main,
)
from repro.reporting.scale import (
    DEFAULT_ADMISSIONS,
    main as scale_main,
    run_scale_smoke,
)


class TestWriteBenchJson:
    def test_writes_one_artifact_with_the_records(self, tmp_path):
        records = [
            {"test": "benchmarks/test_bench_fleet.py::test_bench", "seconds": 1.25,
             "outcome": "passed"},
            {"test": "benchmarks/test_bench_fig05_capacity.py::test_bench",
             "seconds": 0.5, "outcome": "passed"},
        ]
        path = write_bench_json(records, out_dir=tmp_path)
        assert path is not None
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        payload = json.loads(path.read_text())
        assert payload["benchmarks"] == records
        assert payload["total_seconds"] == 1.75
        assert payload["python"]
        assert "created_utc" in payload

    def test_no_records_writes_nothing(self, tmp_path):
        assert write_bench_json([], out_dir=tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_disabled_via_empty_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_JSON_DIR", "")
        records = [{"test": "t", "seconds": 0.1, "outcome": "passed"}]
        assert write_bench_json(records) is None

    def test_env_dir_is_used(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_JSON_DIR", str(tmp_path / "history"))
        records = [{"test": "t", "seconds": 0.1, "outcome": "passed"}]
        path = write_bench_json(records)
        assert path is not None
        assert path.parent == tmp_path / "history"


def _write_artifact(directory, stamp, seconds_by_test, regions_limit=None):
    """One synthetic BENCH_*.json artifact with the given wall clocks."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{stamp}_1.json"
    payload = {
        "created_utc": stamp,
        "python": "3.11",
        "regions_limit": regions_limit,
        "total_seconds": sum(seconds_by_test.values()),
        "benchmarks": [
            {"test": test, "seconds": seconds, "outcome": "passed"}
            for test, seconds in seconds_by_test.items()
        ],
    }
    path.write_text(json.dumps(payload))
    return path


class TestBenchRegressionGate:
    def test_passes_within_tolerance(self, tmp_path):
        _write_artifact(tmp_path, "20260101T000000Z", {"a": 1.0, "b": 0.5})
        _write_artifact(tmp_path, "20260102T000000Z", {"a": 1.1, "b": 0.4})
        _write_artifact(tmp_path, "20260103T000000Z", {"a": 2.0, "b": 0.6})
        report = check_bench_regressions(tmp_path, tolerance=3.0)
        assert not report.skipped
        assert report.checked == 2
        assert report.history_runs == 2
        assert report.passed
        assert report.regressions == ()

    def test_fails_on_regression_against_the_median(self, tmp_path):
        """The baseline is the *median* of history, so one anomalously slow
        historical run does not mask a regression."""
        _write_artifact(tmp_path, "20260101T000000Z", {"a": 1.0})
        _write_artifact(tmp_path, "20260102T000000Z", {"a": 1.2})
        _write_artifact(tmp_path, "20260103T000000Z", {"a": 9.0})  # outlier
        _write_artifact(tmp_path, "20260104T000000Z", {"a": 4.0})
        report = check_bench_regressions(tmp_path, tolerance=3.0)
        assert not report.passed
        (regression,) = report.regressions
        assert regression.test == "a"
        assert regression.baseline_seconds == pytest.approx(1.2)
        assert regression.ratio == pytest.approx(4.0 / 1.2)

    def test_skips_cleanly_without_history(self, tmp_path):
        assert check_bench_regressions(tmp_path / "missing").skipped
        _write_artifact(tmp_path, "20260101T000000Z", {"a": 1.0})
        report = check_bench_regressions(tmp_path)
        assert report.skipped and report.passed

    def test_skips_history_with_a_different_regions_limit(self, tmp_path):
        """A full-catalog run never gates a reduced-catalog run: their wall
        clocks are not comparable."""
        _write_artifact(tmp_path, "20260101T000000Z", {"a": 0.1}, regions_limit=None)
        _write_artifact(tmp_path, "20260102T000000Z", {"a": 5.0}, regions_limit="12")
        report = check_bench_regressions(tmp_path)
        assert report.skipped
        assert "regions_limit" in report.skipped_reason

    def test_new_and_tiny_benchmarks_are_not_gated(self, tmp_path):
        _write_artifact(tmp_path, "20260101T000000Z", {"a": 0.001})
        _write_artifact(tmp_path, "20260102T000000Z", {"a": 0.9, "new": 5.0})
        report = check_bench_regressions(tmp_path)
        # "a" is below the noise floor, "new" has no baseline: clean skip.
        assert report.skipped and report.passed

    def test_corrupt_artifacts_are_ignored(self, tmp_path):
        _write_artifact(tmp_path, "20260101T000000Z", {"a": 1.0})
        (tmp_path / "BENCH_20260102T000000Z_9.json").write_text("{not json")
        _write_artifact(tmp_path, "20260103T000000Z", {"a": 1.1})
        assert len(load_bench_artifacts(tmp_path)) == 2
        report = check_bench_regressions(tmp_path)
        assert not report.skipped
        assert report.passed

    def test_tolerance_must_exceed_one(self, tmp_path):
        with pytest.raises(ValueError):
            check_bench_regressions(tmp_path, tolerance=1.0)

    def test_cli_exit_codes(self, tmp_path, capsys):
        assert bench_gate_main(["--dir", str(tmp_path)]) == 0
        assert "skipped" in capsys.readouterr().out
        _write_artifact(tmp_path, "20260101T000000Z", {"a": 1.0})
        _write_artifact(tmp_path, "20260102T000000Z", {"a": 1.1})
        assert bench_gate_main(["--dir", str(tmp_path)]) == 0
        assert "within budget" in capsys.readouterr().out
        _write_artifact(tmp_path, "20260103T000000Z", {"a": 9.9})
        assert bench_gate_main(["--dir", str(tmp_path), "--tolerance", "3"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_gate_on_the_persisted_repo_history(self):
        """The live gate runs cleanly over the repository's own
        bench-results/ directory (committed history plus whatever earlier
        local runs appended).  Regressions only *warn* here: wall-clock
        policing belongs to the dedicated CI gate step after the benchmark
        run, while tier-1 must stay deterministic on loaded or throttled
        machines."""
        import pathlib
        import warnings

        history_dir = pathlib.Path(__file__).resolve().parent.parent / "bench-results"
        report = check_bench_regressions(history_dir, tolerance=5.0)
        if report.skipped:
            pytest.skip(report.skipped_reason)
        assert report.checked > 0
        if not report.passed:
            warnings.warn(
                f"benchmark wall-clock regressions vs local history: "
                f"{report.regressions}",
                stacklevel=1,
            )


class TestScaleSmokeCli:
    """The CI scale-smoke CLI (`python -m repro.reporting.scale`)."""

    def test_run_scale_smoke_replays_each_admission(self):
        replays = run_scale_smoke(jobs=400, slots=3, horizon_hours=400, seed=1)
        assert [r.admission for r in replays] == list(DEFAULT_ADMISSIONS)
        for replay in replays:
            assert replay.seconds >= 0.0
            assert 0 < replay.started_jobs <= 400
            assert replay.total_emissions_g > 0.0

    def test_main_passes_under_a_generous_ceiling(self, capsys):
        exit_code = scale_main(
            ["--jobs", "400", "--slots", "3", "--horizon", "400",
             "--ceiling-seconds", "60"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("[ok]") == len(DEFAULT_ADMISSIONS)

    def test_main_fails_on_ceiling_breach(self, capsys):
        exit_code = scale_main(
            ["--jobs", "400", "--slots", "3", "--horizon", "400",
             "--ceiling-seconds", "0", "--admission", "fifo"]
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "OVER CEILING" in out
        # --admission restricts the replays to the requested policies.
        assert out.count("fifo") == 1 and "carbon-aware" not in out
