"""Unit tests for the capacity-limited cluster scheduling simulator."""

import numpy as np
import pytest

from repro.cloud.engine import (
    ADMISSION_CARBON_AWARE,
    ADMISSION_CARBON_AWARE_PREEMPTIVE,
    ADMISSION_FIFO,
    simulate_slot_queue,
)
from repro.cloud.scheduler_sim import (
    CarbonAwareSchedulingPolicy,
    ClusterSimulator,
    FifoSchedulingPolicy,
    PreemptiveCarbonAwareSchedulingPolicy,
)
from repro.exceptions import ConfigurationError
from repro.timeseries.series import HourlySeries
from repro.workloads.job import Job
from repro.workloads.traces import ClusterTrace, TraceJob


def _workload(num_jobs=20, length=4, slack=24, spacing=2):
    jobs = [
        TraceJob(
            job=Job.batch(length_hours=length, slack_hours=slack, interruptible=False),
            arrival_hour=i * spacing,
            origin_region="X",
        )
        for i in range(num_jobs)
    ]
    return ClusterTrace.from_jobs(jobs)


@pytest.fixture()
def valley_trace():
    hours = np.arange(24 * 30)
    values = 500.0 + 200.0 * np.cos(2 * np.pi * (hours - 14) / 24.0)
    return HourlySeries(values, name="X")


class TestSimulatorBasics:
    def test_invalid_slots(self, valley_trace):
        with pytest.raises(ConfigurationError):
            ClusterSimulator(valley_trace, 0)

    def test_fifo_completes_all_jobs(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=4)
        result = simulator.run(_workload(), FifoSchedulingPolicy())
        assert result.all_completed
        assert result.total_jobs == 20
        assert result.mean_start_delay_hours == pytest.approx(0.0)

    def test_carbon_aware_completes_all_jobs_within_slack(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=4)
        result = simulator.run(_workload(), CarbonAwareSchedulingPolicy())
        assert result.all_completed
        assert result.mean_start_delay_hours >= 0.0

    def test_emissions_accounting_is_positive_and_finite(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=2)
        result = simulator.run(_workload(num_jobs=5), FifoSchedulingPolicy())
        assert result.total_emissions_g > 0
        # 5 jobs x 4 hours x at most the trace maximum.
        assert result.total_emissions_g <= 5 * 4 * valley_trace.max()


class TestPolicyComparison:
    def test_carbon_aware_never_emits_more_than_fifo_when_uncontended(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=50)
        comparison = simulator.compare(_workload(num_jobs=30, spacing=3))
        assert (
            comparison["carbon-aware"].total_emissions_g
            <= comparison["fifo"].total_emissions_g + 1e-6
        )

    def test_contention_erodes_the_carbon_aware_advantage(self, valley_trace):
        workload = _workload(num_jobs=40, length=6, slack=24, spacing=1)
        roomy = ClusterSimulator(valley_trace, num_slots=40).compare(workload)
        tight = ClusterSimulator(valley_trace, num_slots=3).compare(workload)

        def saving(results):
            fifo = results["fifo"].total_emissions_g
            aware = results["carbon-aware"].total_emissions_g
            return (fifo - aware) / fifo

        assert roomy["carbon-aware"].all_completed
        assert tight["carbon-aware"].all_completed
        # With ample slots the carbon-aware policy saves a meaningful
        # fraction; with only 3 slots the queue forces jobs into expensive
        # hours and the saving shrinks — the paper's resource-constraint
        # argument.
        assert saving(roomy) > 0.02
        assert saving(tight) <= saving(roomy) + 1e-9

    def test_flat_trace_gives_no_advantage(self):
        flat = HourlySeries.constant(400.0, 24 * 20, name="X")
        simulator = ClusterSimulator(flat, num_slots=4)
        comparison = simulator.compare(_workload(num_jobs=10))
        assert comparison["carbon-aware"].total_emissions_g == pytest.approx(
            comparison["fifo"].total_emissions_g
        )

    def test_zero_slack_degenerates_to_fifo(self, valley_trace):
        workload = _workload(num_jobs=10, slack=0)
        simulator = ClusterSimulator(valley_trace, num_slots=4)
        comparison = simulator.compare(workload)
        assert comparison["carbon-aware"].total_emissions_g == pytest.approx(
            comparison["fifo"].total_emissions_g
        )
        assert comparison["carbon-aware"].mean_start_delay_hours == pytest.approx(0.0)


def _random_workload(num_jobs, horizon, seed, interruptible_share=0.0):
    rng = np.random.default_rng(seed)
    jobs = [
        TraceJob(
            job=Job.batch(
                length_hours=int(length),
                slack_hours=int(slack),
                interruptible=bool(interruptible),
                power_kw=float(power),
            ),
            arrival_hour=int(arrival),
            origin_region="X",
        )
        for arrival, length, slack, power, interruptible in zip(
            rng.integers(0, horizon, num_jobs),
            rng.integers(1, 40, num_jobs),
            rng.integers(0, 96, num_jobs),
            rng.uniform(0.5, 2.0, num_jobs),
            rng.random(num_jobs) < interruptible_share,
        )
    ]
    return ClusterTrace.from_jobs(jobs)


class _EvenHourPolicy(FifoSchedulingPolicy):
    """Custom policy exercising the reference-loop fallback path."""

    name = "even-hours"

    def wants_to_start(self, job, hour, trace):
        return hour % 2 == 0 or hour >= job.deadline_hour - job.remaining_hours


def _assert_equivalent(fast, reference):
    """Engine vs reference contract: every decision-derived field is exactly
    equal; emissions agree up to float-addition associativity (the engine's
    event-driven span batching sums intensity segments before multiplying by
    power)."""
    assert fast.policy == reference.policy
    assert fast.completed_jobs == reference.completed_jobs
    assert fast.total_jobs == reference.total_jobs
    assert fast.mean_start_delay_hours == reference.mean_start_delay_hours
    assert fast.max_queue_length == reference.max_queue_length
    assert fast.suspensions == reference.suspensions
    assert fast.total_emissions_g == pytest.approx(
        reference.total_emissions_g, rel=1e-12, abs=1e-9
    )


class TestVectorisedEngineEquivalence:
    """The vectorised engine must reproduce the per-job reference loop:
    identical decisions, emissions equal to within float associativity."""

    @pytest.mark.parametrize("num_slots", [1, 3, 7, 200])
    @pytest.mark.parametrize(
        "policy", [FifoSchedulingPolicy(), CarbonAwareSchedulingPolicy()]
    )
    def test_run_matches_reference(self, valley_trace, num_slots, policy):
        workload = _random_workload(150, len(valley_trace), seed=17)
        simulator = ClusterSimulator(valley_trace, num_slots)
        _assert_equivalent(
            simulator.run(workload, policy),
            simulator.run_reference(workload, policy),
        )

    @pytest.mark.parametrize("num_slots", [1, 3, 7, 200])
    @pytest.mark.parametrize("interruptible_share", [0.0, 0.5, 1.0])
    def test_preemptive_run_matches_reference(
        self, valley_trace, num_slots, interruptible_share
    ):
        """The preemptive engine must reproduce the preemptive reference
        loop — identical starts, suspensions, completions and queue depths —
        across contended and uncontended slot limits."""
        workload = _random_workload(
            150, len(valley_trace), seed=17, interruptible_share=interruptible_share
        )
        simulator = ClusterSimulator(valley_trace, num_slots)
        policy = PreemptiveCarbonAwareSchedulingPolicy()
        fast = simulator.run(workload, policy)
        _assert_equivalent(fast, simulator.run_reference(workload, policy))
        if interruptible_share == 0.0:
            assert fast.suspensions == 0

    def test_custom_policy_falls_back_to_reference(self, valley_trace):
        workload = _random_workload(40, len(valley_trace), seed=3)
        simulator = ClusterSimulator(valley_trace, num_slots=3)
        policy = _EvenHourPolicy()
        result = simulator.run(workload, policy)
        assert result == simulator.run_reference(workload, policy)
        assert result.policy == "even-hours"

    def test_empty_workload(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=2)
        result = simulator.run(ClusterTrace(()), FifoSchedulingPolicy())
        assert result.total_jobs == 0
        assert result.total_emissions_g == 0.0
        assert result.all_completed


class TestTrueDeadlineSemantics:
    """Late-arriving jobs keep their slack (the deadline is no longer clamped
    to the horizon; only the carbon-aware search window is)."""

    def test_late_arrival_defers_to_cheap_in_horizon_hours(self):
        # Hours 40-43 expensive, 44-47 cheap.  A 4-hour job arriving at 40
        # with huge slack used to be force-started at 40 (clamped deadline
        # made `hour >= latest_start` fire); it must now wait for hour 44.
        values = np.full(48, 1000.0)
        values[44:] = 100.0
        trace = HourlySeries(values, name="X")
        job = TraceJob(
            job=Job.batch(length_hours=4, slack_hours=100, interruptible=False),
            arrival_hour=40,
            origin_region="X",
        )
        workload = ClusterTrace.from_jobs([job])
        simulator = ClusterSimulator(trace, num_slots=1)
        result = simulator.run(workload, CarbonAwareSchedulingPolicy())
        assert result.total_emissions_g == pytest.approx(4 * 100.0)
        assert result.mean_start_delay_hours == pytest.approx(4.0)
        assert result.all_completed
        # The reference loop implements the same semantics.
        _assert_equivalent(
            result, simulator.run_reference(workload, CarbonAwareSchedulingPolicy())
        )

    def test_fifo_unaffected_by_deadline_semantics(self):
        values = np.full(48, 1000.0)
        values[44:] = 100.0
        trace = HourlySeries(values, name="X")
        workload = ClusterTrace.from_jobs(
            [
                TraceJob(
                    job=Job.batch(length_hours=4, slack_hours=100),
                    arrival_hour=40,
                    origin_region="X",
                )
            ]
        )
        result = ClusterSimulator(trace, 1).run(workload, FifoSchedulingPolicy())
        assert result.mean_start_delay_hours == pytest.approx(0.0)


class TestPartialCompletionAccounting:
    """Jobs the horizon cuts off keep their partial emissions but do not
    count as completed."""

    def test_unfinished_job_charges_partial_emissions(self):
        trace = HourlySeries.constant(200.0, 10, name="X")
        workload = ClusterTrace.from_jobs(
            [
                TraceJob(
                    job=Job.batch(length_hours=8, slack_hours=0),
                    arrival_hour=6,
                    origin_region="X",
                )
            ]
        )
        result = ClusterSimulator(trace, 1).run(workload, FifoSchedulingPolicy())
        assert result.completed_jobs == 0
        assert not result.all_completed
        # Started at 6, executed hours 6-9 (4 of 8) before the horizon.
        assert result.total_emissions_g == pytest.approx(4 * 200.0)
        assert result.mean_start_delay_hours == pytest.approx(0.0)
        _assert_equivalent(
            result,
            ClusterSimulator(trace, 1).run_reference(workload, FifoSchedulingPolicy()),
        )

    def test_never_started_job_charges_nothing(self):
        trace = HourlySeries.constant(200.0, 10, name="X")
        # One slot: the second job queues behind an 8-hour job and the
        # horizon ends before a slot frees up.
        workload = ClusterTrace.from_jobs(
            [
                TraceJob(
                    job=Job.batch(length_hours=8, slack_hours=0),
                    arrival_hour=2,
                    origin_region="X",
                ),
                TraceJob(
                    job=Job.batch(length_hours=2, slack_hours=0),
                    arrival_hour=3,
                    origin_region="X",
                ),
            ]
        )
        result = ClusterSimulator(trace, 1).run(workload, FifoSchedulingPolicy())
        assert result.completed_jobs == 1
        assert result.total_jobs == 2
        # Only the first job's 8 executed hours are charged.
        assert result.total_emissions_g == pytest.approx(8 * 200.0)
        # The queued job never started, so it contributes no start delay.
        assert result.mean_start_delay_hours == pytest.approx(0.0)


class TestPreemptiveSemantics:
    """Suspend/resume behaviour of the preemptive carbon-aware admission."""

    def test_interruptible_job_runs_exactly_the_cheap_hours(self):
        # Values 9,1,9,1,9,9: a 2-hour interruptible job with 3 hours of
        # slack runs hour 1, suspends through the expensive hour 2, and
        # resumes for hour 3 — total emissions 2, one suspension.
        values = np.array([9.0, 1.0, 9.0, 1.0, 9.0, 9.0])
        trace = HourlySeries(values, name="X")
        workload = ClusterTrace.from_jobs(
            [
                TraceJob(
                    job=Job.batch(length_hours=2, slack_hours=3, interruptible=True),
                    arrival_hour=0,
                    origin_region="X",
                )
            ]
        )
        simulator = ClusterSimulator(trace, 1)
        result = simulator.run(workload, PreemptiveCarbonAwareSchedulingPolicy())
        assert result.total_emissions_g == pytest.approx(2.0)
        assert result.suspensions == 1
        assert result.all_completed
        # First start is hour 1, so the delay is one hour despite the resume.
        assert result.mean_start_delay_hours == pytest.approx(1.0)
        _assert_equivalent(
            result,
            simulator.run_reference(workload, PreemptiveCarbonAwareSchedulingPolicy()),
        )

    def test_non_interruptible_jobs_run_contiguously_bit_identical(self):
        """A workload with no interruptible jobs must be *bit-identical*
        between the preemptive and non-preemptive admissions (the fleet
        experiment's interruptible-fraction-0.0 guarantee)."""
        rng = np.random.default_rng(5)
        values = np.clip(
            400.0
            + 150.0 * np.cos(2 * np.pi * (np.arange(720) - 14) / 24.0)
            + rng.normal(0.0, 30.0, 720),
            1.0,
            None,
        )
        n = 80
        arrivals = rng.integers(0, 720, n)
        lengths = rng.integers(1, 30, n)
        deadlines = arrivals + lengths + rng.integers(0, 72, n)
        powers = rng.uniform(0.5, 2.0, n)
        plain = simulate_slot_queue(
            values, arrivals, lengths, deadlines, powers, 4,
            admission=ADMISSION_CARBON_AWARE,
        )
        preemptive = simulate_slot_queue(
            values, arrivals, lengths, deadlines, powers, 4,
            admission=ADMISSION_CARBON_AWARE_PREEMPTIVE,
            interruptible=np.zeros(n, dtype=bool),
        )
        assert np.array_equal(plain.emissions_g, preemptive.emissions_g)
        assert np.array_equal(plain.start_hours, preemptive.start_hours)
        assert np.array_equal(plain.finish_hours, preemptive.finish_hours)
        assert np.array_equal(plain.start_delays, preemptive.start_delays)
        assert plain.max_queue_length == preemptive.max_queue_length
        assert preemptive.total_suspensions == 0

    def test_preemption_helps_when_uncontended(self, valley_trace):
        """With ample slots the preemptive policy must do at least as well
        as contiguous carbon-aware queueing on interruptible jobs (it can
        always fall back to the contiguous schedule)."""
        workload = _random_workload(
            60, len(valley_trace), seed=23, interruptible_share=1.0
        )
        simulator = ClusterSimulator(valley_trace, num_slots=60)
        aware = simulator.run(workload, CarbonAwareSchedulingPolicy())
        preemptive = simulator.run(workload, PreemptiveCarbonAwareSchedulingPolicy())
        assert preemptive.total_emissions_g <= aware.total_emissions_g + 1e-6
        assert preemptive.suspensions > 0

    def test_suspended_job_keeps_remaining_length_and_completes(self):
        """A suspended job re-queues with its *remaining* length: it runs
        the opening cheap hour, sits out the expensive hour because two
        cheaper hours fit before its latest start, and resumes for exactly
        the two hours it still needs."""
        values = np.array([1.0, 100.0, 10.0, 10.0, 100.0, 100.0, 100.0, 100.0])
        trace = HourlySeries(values, name="X")
        workload = ClusterTrace.from_jobs(
            [
                TraceJob(
                    job=Job.batch(length_hours=3, slack_hours=4, interruptible=True),
                    arrival_hour=0,
                    origin_region="X",
                )
            ]
        )
        simulator = ClusterSimulator(trace, 1)
        result = simulator.run(workload, PreemptiveCarbonAwareSchedulingPolicy())
        # Segments [0, 1) and [2, 4): emissions 1 + 10 + 10.
        assert result.all_completed
        assert result.suspensions == 1
        assert result.total_emissions_g == pytest.approx(21.0)
        _assert_equivalent(
            result,
            simulator.run_reference(workload, PreemptiveCarbonAwareSchedulingPolicy()),
        )

    def test_contended_slot_is_released_to_a_forced_job_on_suspension(self):
        """Suspension frees the slot for queued work: an interruptible job
        steps aside during its expensive stretch, a zero-slack job takes the
        slot, and the interruptible job resumes once it frees up again."""
        values = np.array([1.0, 9.0, 9.0, 9.0, 1.0, 9.0, 9.0, 9.0])
        trace = HourlySeries(values, name="X")
        workload = ClusterTrace.from_jobs(
            [
                TraceJob(
                    job=Job.batch(length_hours=2, slack_hours=4, interruptible=True),
                    arrival_hour=0,
                    origin_region="X",
                ),
                TraceJob(
                    job=Job.batch(length_hours=3, slack_hours=0, interruptible=False),
                    arrival_hour=1,
                    origin_region="X",
                ),
            ]
        )
        simulator = ClusterSimulator(trace, 1)
        result = simulator.run(workload, PreemptiveCarbonAwareSchedulingPolicy())
        # Interruptible job runs hours 0 and 4 (1 + 1); the pinned job runs
        # hours 1-3 (9 × 3) in the slot the suspension released.
        assert result.all_completed
        assert result.suspensions == 1
        assert result.total_emissions_g == pytest.approx(1.0 + 1.0 + 3 * 9.0)
        _assert_equivalent(
            result,
            simulator.run_reference(workload, PreemptiveCarbonAwareSchedulingPolicy()),
        )


class TestEngineEdgeCases:
    """Edge cases of the slot/queue kernel, per admission kind."""

    @pytest.mark.parametrize(
        "admission",
        [ADMISSION_FIFO, ADMISSION_CARBON_AWARE, ADMISSION_CARBON_AWARE_PREEMPTIVE],
    )
    def test_zero_job_input(self, admission):
        empty = np.array([], dtype=np.int64)
        outcome = simulate_slot_queue(
            np.ones(24),
            empty,
            empty,
            empty,
            np.array([], dtype=float),
            2,
            admission=admission,
        )
        assert outcome.completed_jobs == 0
        assert outcome.started_jobs == 0
        assert outcome.total_emissions_g() == 0.0
        assert outcome.max_queue_length == 0
        assert outcome.total_suspensions == 0

    @pytest.mark.parametrize(
        "admission",
        [ADMISSION_FIFO, ADMISSION_CARBON_AWARE, ADMISSION_CARBON_AWARE_PREEMPTIVE],
    )
    def test_job_arriving_at_last_horizon_hour(self, admission):
        """A job arriving at horizon − 1 starts (its deadline search window
        collapses to that one hour) and runs exactly one in-horizon hour."""
        values = np.full(48, 7.0)
        outcome = simulate_slot_queue(
            values,
            np.array([47]),
            np.array([4]),
            np.array([51]),
            np.array([1.0]),
            1,
            admission=admission,
            interruptible=np.array([True]),
        )
        assert outcome.start_hours[0] == 47
        assert outcome.finish_hours[0] == -1  # cut off by the horizon
        assert outcome.emissions_g[0] == pytest.approx(7.0)
        assert np.array_equal(outcome.start_delays, np.array([0.0]))

    def test_deadline_far_beyond_horizon_clamps_search_window_only(self):
        """A carbon-aware job whose true deadline lies far beyond the horizon
        keeps its slack: the search window is clamped to the horizon and the
        job waits for the cheapest in-horizon hours instead of being
        force-started at arrival."""
        values = np.full(48, 1000.0)
        values[44:] = 100.0
        for admission in (ADMISSION_CARBON_AWARE, ADMISSION_CARBON_AWARE_PREEMPTIVE):
            outcome = simulate_slot_queue(
                values,
                np.array([40]),
                np.array([4]),
                np.array([40 + 4 + 10_000]),
                np.array([1.0]),
                1,
                admission=admission,
            )
            assert outcome.start_hours[0] == 44
            assert outcome.finish_hours[0] == 48
            assert outcome.emissions_g[0] == pytest.approx(4 * 100.0)

    def test_scheduler_simulator_zero_jobs_all_policies(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=2)
        for policy in (
            FifoSchedulingPolicy(),
            CarbonAwareSchedulingPolicy(),
            PreemptiveCarbonAwareSchedulingPolicy(),
        ):
            result = simulator.run(ClusterTrace(()), policy)
            assert result.total_jobs == 0
            assert result.all_completed
            assert result.suspensions == 0
            _assert_equivalent(result, simulator.run_reference(ClusterTrace(()), policy))

    def test_rejects_mismatched_interruptible_array(self, valley_trace):
        with pytest.raises(ConfigurationError):
            simulate_slot_queue(
                np.ones(4),
                np.array([0]),
                np.array([1]),
                np.array([1]),
                np.array([1.0]),
                1,
                interruptible=np.array([True, False]),
            )
