"""Unit tests for the capacity-limited cluster scheduling simulator."""

import numpy as np
import pytest

from repro.cloud.scheduler_sim import (
    CarbonAwareSchedulingPolicy,
    ClusterSimulator,
    FifoSchedulingPolicy,
)
from repro.exceptions import ConfigurationError
from repro.timeseries.series import HourlySeries
from repro.workloads.job import Job
from repro.workloads.traces import ClusterTrace, TraceJob


def _workload(num_jobs=20, length=4, slack=24, spacing=2):
    jobs = [
        TraceJob(
            job=Job.batch(length_hours=length, slack_hours=slack, interruptible=False),
            arrival_hour=i * spacing,
            origin_region="X",
        )
        for i in range(num_jobs)
    ]
    return ClusterTrace.from_jobs(jobs)


@pytest.fixture()
def valley_trace():
    hours = np.arange(24 * 30)
    values = 500.0 + 200.0 * np.cos(2 * np.pi * (hours - 14) / 24.0)
    return HourlySeries(values, name="X")


class TestSimulatorBasics:
    def test_invalid_slots(self, valley_trace):
        with pytest.raises(ConfigurationError):
            ClusterSimulator(valley_trace, 0)

    def test_fifo_completes_all_jobs(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=4)
        result = simulator.run(_workload(), FifoSchedulingPolicy())
        assert result.all_completed
        assert result.total_jobs == 20
        assert result.mean_start_delay_hours == pytest.approx(0.0)

    def test_carbon_aware_completes_all_jobs_within_slack(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=4)
        result = simulator.run(_workload(), CarbonAwareSchedulingPolicy())
        assert result.all_completed
        assert result.mean_start_delay_hours >= 0.0

    def test_emissions_accounting_is_positive_and_finite(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=2)
        result = simulator.run(_workload(num_jobs=5), FifoSchedulingPolicy())
        assert result.total_emissions_g > 0
        # 5 jobs x 4 hours x at most the trace maximum.
        assert result.total_emissions_g <= 5 * 4 * valley_trace.max()


class TestPolicyComparison:
    def test_carbon_aware_never_emits_more_than_fifo_when_uncontended(self, valley_trace):
        simulator = ClusterSimulator(valley_trace, num_slots=50)
        comparison = simulator.compare(_workload(num_jobs=30, spacing=3))
        assert (
            comparison["carbon-aware"].total_emissions_g
            <= comparison["fifo"].total_emissions_g + 1e-6
        )

    def test_contention_erodes_the_carbon_aware_advantage(self, valley_trace):
        workload = _workload(num_jobs=40, length=6, slack=24, spacing=1)
        roomy = ClusterSimulator(valley_trace, num_slots=40).compare(workload)
        tight = ClusterSimulator(valley_trace, num_slots=3).compare(workload)

        def saving(results):
            fifo = results["fifo"].total_emissions_g
            aware = results["carbon-aware"].total_emissions_g
            return (fifo - aware) / fifo

        assert roomy["carbon-aware"].all_completed
        assert tight["carbon-aware"].all_completed
        # With ample slots the carbon-aware policy saves a meaningful
        # fraction; with only 3 slots the queue forces jobs into expensive
        # hours and the saving shrinks — the paper's resource-constraint
        # argument.
        assert saving(roomy) > 0.02
        assert saving(tight) <= saving(roomy) + 1e-9

    def test_flat_trace_gives_no_advantage(self):
        flat = HourlySeries.constant(400.0, 24 * 20, name="X")
        simulator = ClusterSimulator(flat, num_slots=4)
        comparison = simulator.compare(_workload(num_jobs=10))
        assert comparison["carbon-aware"].total_emissions_g == pytest.approx(
            comparison["fifo"].total_emissions_g
        )

    def test_zero_slack_degenerates_to_fifo(self, valley_trace):
        workload = _workload(num_jobs=10, slack=0)
        simulator = ClusterSimulator(valley_trace, num_slots=4)
        comparison = simulator.compare(workload)
        assert comparison["carbon-aware"].total_emissions_g == pytest.approx(
            comparison["fifo"].total_emissions_g
        )
        assert comparison["carbon-aware"].mean_start_delay_hours == pytest.approx(0.0)
