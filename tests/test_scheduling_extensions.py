"""Unit tests for the extension policies: overhead-aware scheduling,
forecast-driven (non-clairvoyant) scheduling and rank-stability analysis."""

import numpy as np
import pytest

from repro.analysis.rank_stability import rank_stability
from repro.exceptions import ConfigurationError
from repro.forecast.models import PersistenceForecaster
from repro.scheduling import (
    DeferralPolicy,
    ForecastDeferralPolicy,
    InterruptiblePolicy,
    OneMigrationPolicy,
    OverheadAwareInterruptiblePolicy,
    OverheadAwareMigrationPolicy,
    OverheadModel,
    clairvoyance_gap,
)
from repro.timeseries.series import HourlySeries
from repro.workloads.job import Job


class TestOverheadModel:
    def test_defaults_are_free(self):
        assert OverheadModel().is_free

    def test_invalid_overheads(self):
        with pytest.raises(ConfigurationError):
            OverheadModel(suspend_resume_hours=-1)
        with pytest.raises(ConfigurationError):
            OverheadModel(migration_hours=-0.5)


class TestOverheadAwareInterruptiblePolicy:
    def test_zero_overhead_matches_ideal(self, small_dataset):
        trace = small_dataset.series("US-CA")
        job = Job.batch(length_hours=24, slack_hours=48, interruptible=True)
        ideal = InterruptiblePolicy().schedule(job, trace, 1000)
        aware = OverheadAwareInterruptiblePolicy(OverheadModel()).schedule(job, trace, 1000)
        assert aware.emissions_g == pytest.approx(ideal.emissions_g)

    def test_overhead_reduces_the_savings(self, small_dataset):
        trace = small_dataset.series("US-CA")
        job = Job.batch(length_hours=24, slack_hours=168, interruptible=True)
        ideal = InterruptiblePolicy().schedule(job, trace, 2000)
        aware = OverheadAwareInterruptiblePolicy(
            OverheadModel(suspend_resume_hours=0.5)
        ).schedule(job, trace, 2000)
        assert aware.emissions_g >= ideal.emissions_g - 1e-9

    def test_falls_back_to_contiguous_when_overhead_dominates(self, small_dataset):
        trace = small_dataset.series("US-CA")
        job = Job.batch(length_hours=24, slack_hours=168, interruptible=True)
        aware = OverheadAwareInterruptiblePolicy(
            OverheadModel(suspend_resume_hours=100.0)
        ).schedule(job, trace, 2000)
        deferral = DeferralPolicy().schedule(job, trace, 2000)
        assert aware.emissions_g == pytest.approx(deferral.emissions_g)
        assert aware.num_interruptions == 0

    def test_never_worse_than_baseline(self, small_dataset):
        trace = small_dataset.series("DE")
        job = Job.batch(length_hours=12, slack_hours=24, interruptible=True)
        policy = OverheadAwareInterruptiblePolicy(OverheadModel(suspend_resume_hours=1.0))
        for arrival in (0, 3000, 8000):
            result = policy.schedule(job, trace, arrival)
            assert result.emissions_g <= result.baseline_emissions_g + 1e-9


class TestOverheadAwareMigrationPolicy:
    def test_zero_overhead_matches_ideal(self, small_dataset):
        job = Job.batch(length_hours=24)
        ideal = OneMigrationPolicy().schedule(job, small_dataset, "IN-MH", 0)
        aware = OverheadAwareMigrationPolicy().schedule(job, small_dataset, "IN-MH", 0)
        assert aware.emissions_g == pytest.approx(ideal.emissions_g)

    def test_overhead_added_to_migrated_emissions(self, small_dataset):
        job = Job.batch(length_hours=24)
        ideal = OneMigrationPolicy().schedule(job, small_dataset, "IN-MH", 0)
        aware = OverheadAwareMigrationPolicy(
            OverheadModel(migration_hours=2.0)
        ).schedule(job, small_dataset, "IN-MH", 0)
        assert aware.emissions_g > ideal.emissions_g
        assert aware.emissions_g < aware.baseline_emissions_g

    def test_stays_home_when_migration_does_not_pay(self, small_dataset):
        # A short job from an already-green region with a huge overhead.
        job = Job.batch(length_hours=1)
        origin = "CA-QC"
        aware = OverheadAwareMigrationPolicy(
            OverheadModel(migration_hours=500.0)
        ).schedule(job, small_dataset, origin, 0)
        assert aware.regions_used() == (origin,)
        assert aware.emissions_g == pytest.approx(aware.baseline_emissions_g)


class TestForecastDeferralPolicy:
    def test_perfect_periodic_trace_matches_clairvoyant(self, diurnal_trace):
        job = Job.batch(length_hours=6, slack_hours=24)
        arrival = 24 * 40
        online = ForecastDeferralPolicy().schedule(job, diurnal_trace, arrival)
        clairvoyant = DeferralPolicy().schedule(job, diurnal_trace, arrival)
        assert online.emissions_g == pytest.approx(clairvoyant.emissions_g, rel=1e-3)

    def test_insufficient_history_runs_immediately(self, diurnal_trace):
        job = Job.batch(length_hours=6, slack_hours=24)
        result = ForecastDeferralPolicy(history_hours=200).schedule(job, diurnal_trace, 10)
        assert result.delay_hours == 0

    def test_never_better_than_clairvoyant(self, small_dataset):
        trace = small_dataset.series("US-CA")
        job = Job.batch(length_hours=12, slack_hours=24)
        online = ForecastDeferralPolicy()
        clairvoyant = DeferralPolicy()
        for arrival in (1000, 4000, 7000):
            assert (
                online.schedule(job, trace, arrival).emissions_g
                >= clairvoyant.schedule(job, trace, arrival).emissions_g - 1e-6
            )

    def test_invalid_history(self):
        with pytest.raises(ConfigurationError):
            ForecastDeferralPolicy(history_hours=0)

    def test_clairvoyance_gap_summary(self, small_dataset):
        trace = small_dataset.series("US-CA")
        job = Job.batch(length_hours=12, slack_hours=24)
        summary = clairvoyance_gap(trace, job, list(range(1000, 2000, 200)))
        assert summary["clairvoyant_mean"] <= summary["online_mean"] + 1e-6
        assert summary["online_mean"] <= summary["baseline_mean"] + 1e-6
        assert 0.0 <= summary["captured_fraction"] <= 1.0 + 1e-9

    def test_year_end_arrival_wraps_start_hour(self, diurnal_trace):
        """Regression: a forecast-chosen start past the year end must be
        reduced modulo the trace length (the policies' cyclic convention),
        not emitted as an out-of-trace absolute hour."""
        from repro.forecast.models import Forecaster

        class DescendingForecaster(Forecaster):
            name = "descending"

            def forecast(self, history, horizon_hours):
                # Cheapest at the end of the horizon: forces the latest start.
                return np.arange(float(horizon_hours), 0.0, -1.0)

        job = Job.batch(length_hours=4, slack_hours=44)
        arrival = 8758
        result = ForecastDeferralPolicy(DescendingForecaster()).schedule(
            job, diurnal_trace, arrival
        )
        start = result.slices[0].start_hour
        # The latest window start is offset 44: (8758 + 44) % 8760 == 42.
        assert start == 42
        assert 0 <= start < len(diurnal_trace)
        expected = float(diurnal_trace.window(42, 4, wrap=True).sum())
        assert result.emissions_g == pytest.approx(expected)

    def test_clairvoyance_gap_zero_ideal_reduction(self):
        """On a flat trace deferral cannot reduce anything: the captured
        fraction must take the zero-division branch, not blow up.  The
        online policy matches the baseline exactly, so by convention it
        captured all of the nothing there was to capture (1.0) — the old
        behaviour silently reported 0.0 even when online >= baseline."""
        flat = HourlySeries.constant(350.0, 24 * 40, name="flat")
        job = Job.batch(length_hours=6, slack_hours=24)
        summary = clairvoyance_gap(flat, job, [400, 500, 600])
        assert summary["baseline_mean"] == pytest.approx(summary["clairvoyant_mean"])
        assert summary["online_mean"] == pytest.approx(summary["baseline_mean"])
        assert summary["captured_fraction"] == 1.0

    def test_clairvoyance_gap_non_deferrable_job(self, diurnal_trace):
        """Zero slack: all three policies coincide; nothing was capturable
        and nothing was lost, so the captured fraction is 1.0."""
        job = Job.batch(length_hours=6, slack_hours=0)
        summary = clairvoyance_gap(diurnal_trace, job, [1000, 2000])
        assert summary["online_mean"] == pytest.approx(summary["baseline_mean"])
        assert summary["captured_fraction"] == 1.0

    def test_clairvoyance_gap_rejects_empty_arrivals(self, diurnal_trace):
        """Regression: an empty arrival list used to raise ZeroDivisionError
        from the mean computation instead of a ConfigurationError."""
        job = Job.batch(length_hours=6, slack_hours=24)
        with pytest.raises(ConfigurationError):
            clairvoyance_gap(diurnal_trace, job, [])
        with pytest.raises(ConfigurationError):
            clairvoyance_gap(diurnal_trace, job, np.array([], dtype=int))

    def test_clairvoyance_gap_captured_fraction_bounds(self, diurnal_trace):
        """On a predictable trace with real headroom the forecast captures a
        positive share of the clairvoyant reduction, never more than all
        of it."""
        job = Job.batch(length_hours=6, slack_hours=24)
        summary = clairvoyance_gap(diurnal_trace, job, list(range(1000, 3000, 250)))
        assert summary["baseline_mean"] > summary["clairvoyant_mean"]
        assert 0.0 < summary["captured_fraction"] <= 1.0 + 1e-9

    def test_persistence_forecaster_can_be_injected(self, small_dataset):
        # A persistence forecast carries no signal about the future, so the
        # chosen window is effectively arbitrary within the slack; the result
        # must still be a valid schedule that starts within the slack window.
        trace = small_dataset.series("US-CA")
        job = Job.batch(length_hours=12, slack_hours=24)
        policy = ForecastDeferralPolicy(PersistenceForecaster())
        result = policy.schedule(job, trace, 5000)
        from repro.core.result import ScheduleResult

        ScheduleResult.validate_covers_job(result)
        assert 0 <= result.delay_hours <= job.slack_hours


class TestRankStability:
    def test_statistics_on_small_dataset(self, small_dataset):
        stability = rank_stability(small_dataset)
        assert 0.0 <= stability.greenest_agreement <= 1.0
        assert stability.greenest_in_top_k >= stability.greenest_agreement
        assert -1.0 <= stability.mean_rank_correlation <= 1.0
        assert stability.greenest_changes_per_day >= 1.0

    def test_synthetic_dataset_rank_order_is_stable(self, small_dataset):
        stability = rank_stability(small_dataset)
        assert stability.mean_rank_correlation > 0.8
        assert stability.is_stable

    def test_identical_regions_are_not_flagged_unstable_by_top_k(self, small_dataset):
        stability = rank_stability(small_dataset, top_k=len(small_dataset.codes()))
        assert stability.greenest_in_top_k == pytest.approx(1.0)

    def test_requires_two_regions(self, small_dataset):
        with pytest.raises(ConfigurationError):
            rank_stability(small_dataset, codes=("SE",))

    def test_invalid_top_k(self, small_dataset):
        with pytest.raises(ConfigurationError):
            rank_stability(small_dataset, top_k=0)
