"""Unit tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.grid.mix import GenerationMix
from repro.grid.synthesis import (
    BASE_YEAR,
    RegionTrend,
    SynthesisConfig,
    TraceSynthesizer,
    hours_in_year,
    stable_region_seed,
)
from repro.timeseries.stats import daily_coefficient_of_variation


class TestConfig:
    def test_defaults_valid(self):
        SynthesisConfig()

    def test_invalid_fractions(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(improving_fraction=0.8, worsening_fraction=0.5)
        with pytest.raises(ConfigurationError):
            SynthesisConfig(improving_fraction=-0.1)

    def test_invalid_autocorrelation(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(wind_autocorrelation=1.0)

    def test_invalid_clamps(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(min_intensity=0)
        with pytest.raises(ConfigurationError):
            SynthesisConfig(min_intensity=10, max_intensity=5)


class TestHelpers:
    def test_hours_in_year(self):
        assert hours_in_year(2022) == 8760
        assert hours_in_year(2020) == 8784
        assert hours_in_year(2100) == 8760  # century non-leap
        assert hours_in_year(2000) == 8784  # 400-year leap

    def test_stable_seed_is_deterministic(self):
        assert stable_region_seed("SE", 2022, 1) == stable_region_seed("SE", 2022, 1)
        assert stable_region_seed("SE", 2022, 1) != stable_region_seed("SE", 2021, 1)
        assert stable_region_seed("SE", 2022, 1) != stable_region_seed("DE", 2022, 1)


class TestTraceSynthesis:
    def test_trace_length_matches_year(self, small_catalog):
        synthesizer = TraceSynthesizer()
        region = small_catalog.get("US-CA")
        assert len(synthesizer.synthesize(region, 2022)) == 8760
        assert len(synthesizer.synthesize(region, 2020)) == 8784

    def test_reproducible(self, small_catalog):
        region = small_catalog.get("DE")
        a = TraceSynthesizer().synthesize(region, 2022)
        b = TraceSynthesizer().synthesize(region, 2022)
        assert np.array_equal(a.values, b.values)

    def test_mean_close_to_mix_intensity(self, small_catalog):
        synthesizer = TraceSynthesizer()
        for code in ("SE", "IN-MH", "DE"):
            region = small_catalog.get(code)
            trace = synthesizer.synthesize(region, BASE_YEAR)
            assert trace.mean() == pytest.approx(
                region.expected_carbon_intensity, rel=0.25
            )

    def test_values_within_clamps(self, small_catalog):
        config = SynthesisConfig()
        synthesizer = TraceSynthesizer(config)
        trace = synthesizer.synthesize(small_catalog.get("PL"), 2022)
        assert trace.min() >= config.min_intensity
        assert trace.max() <= config.max_intensity

    def test_renewable_heavy_region_varies_more_than_fossil_region(self, small_catalog):
        synthesizer = TraceSynthesizer()
        variable = synthesizer.synthesize(small_catalog.get("US-CA"), 2022)
        stable = synthesizer.synthesize(small_catalog.get("SG"), 2022)
        assert daily_coefficient_of_variation(variable) > 3 * daily_coefficient_of_variation(stable)

    def test_clean_grid_is_low_carbon(self, small_catalog):
        synthesizer = TraceSynthesizer()
        sweden = synthesizer.synthesize(small_catalog.get("SE"), 2022)
        mumbai = synthesizer.synthesize(small_catalog.get("IN-MH"), 2022)
        assert sweden.mean() < 30
        assert mumbai.mean() > 450

    def test_solar_region_has_midday_valley(self, small_catalog):
        synthesizer = TraceSynthesizer()
        california = synthesizer.synthesize(small_catalog.get("US-CA"), 2022)
        profile = california.hour_of_day_profile()
        assert profile[12] < profile[20]

    def test_synthesize_from_mix_respects_emission_ordering(self):
        synthesizer = TraceSynthesizer()
        dirty = synthesizer.synthesize_from_mix(GenerationMix.from_kwargs(coal=1.0), seed=1)
        clean = synthesizer.synthesize_from_mix(GenerationMix.from_kwargs(hydro=1.0), seed=1)
        assert dirty.mean() > 10 * clean.mean()


class TestTrends:
    def test_trend_assignment_is_deterministic(self, full_catalog):
        synthesizer = TraceSynthesizer()
        region = full_catalog.get("FR")
        assert synthesizer.region_trend(region) == synthesizer.region_trend(region)

    def test_trend_fractions_roughly_match_config(self, full_catalog):
        synthesizer = TraceSynthesizer()
        trends = [synthesizer.region_trend(region) for region in full_catalog]
        improving = trends.count(RegionTrend.IMPROVING) / len(trends)
        worsening = trends.count(RegionTrend.WORSENING) / len(trends)
        assert 0.1 < improving < 0.4
        assert 0.08 < worsening < 0.35

    def test_mix_for_base_year_is_catalog_mix(self, full_catalog):
        synthesizer = TraceSynthesizer()
        region = full_catalog.get("DE")
        assert synthesizer.mix_for_year(region, BASE_YEAR).shares == region.mix.shares

    def test_improving_region_was_dirtier_in_the_past(self, full_catalog):
        synthesizer = TraceSynthesizer()
        improving = [
            region
            for region in full_catalog
            if synthesizer.region_trend(region) == RegionTrend.IMPROVING
            and region.mix.variable_renewable_share > 0.05
        ]
        assert improving, "expected at least one improving region with renewables"
        region = improving[0]
        past = synthesizer.mix_for_year(region, 2020)
        assert past.average_carbon_intensity() > region.mix.average_carbon_intensity()

    def test_worsening_region_was_cleaner_in_the_past(self, full_catalog):
        synthesizer = TraceSynthesizer()
        worsening = [
            region
            for region in full_catalog
            if synthesizer.region_trend(region) == RegionTrend.WORSENING
            and region.mix.fossil_share > 0.1
        ]
        assert worsening, "expected at least one worsening region with fossil generation"
        region = worsening[0]
        past = synthesizer.mix_for_year(region, 2020)
        assert past.average_carbon_intensity() < region.mix.average_carbon_intensity()
